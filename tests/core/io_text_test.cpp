#include "core/io_text.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "corpus.hpp"

namespace bw::core {
namespace {

using testutil::World;

Dataset small_dataset() {
  World world({0, util::days(2)}, 0);
  const net::Ipv4 victim(24, 0, 0, 1);
  bgp::UpdateLog control;
  control.push_back(world.platform->service().make_announce(
      util::kHour, World::kVictimAsn, 50000, net::Prefix::host(victim),
      {bgp::Community{0, 300}}));
  control.push_back(world.platform->service().make_withdraw(
      2 * util::kHour, World::kVictimAsn, 50000, net::Prefix::host(victim)));
  std::vector<flow::TrafficBurst> bursts;
  bursts.push_back(world.burst(net::Ipv4(64, 0, 0, 1), victim,
                               net::Proto::kUdp, 123, 4444,
                               {util::kHour, 2 * util::kHour}, 50,
                               world.acceptor));
  bursts.push_back(world.burst(net::Ipv4(64, 1, 0, 1), victim,
                               net::Proto::kTcp, 55555, 443,
                               {0, util::kHour}, 25, world.rejector));
  return world.run(std::move(control), bursts);
}

TEST(IoTextTest, ControlRoundTrip) {
  const Dataset ds = small_dataset();
  std::stringstream ss;
  write_control_csv(ss, ds.control());
  const auto parsed = read_control_csv(ss);
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->size(), ds.control().size());
  for (std::size_t i = 0; i < parsed->size(); ++i) {
    const auto& a = (*parsed)[i];
    const auto& b = ds.control()[i];
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.sender_asn, b.sender_asn);
    EXPECT_EQ(a.origin_asn, b.origin_asn);
    EXPECT_EQ(a.prefix, b.prefix);
    EXPECT_EQ(a.next_hop, b.next_hop);
    EXPECT_EQ(a.communities, b.communities);
  }
}

TEST(IoTextTest, FlowsRoundTrip) {
  const Dataset ds = small_dataset();
  std::stringstream ss;
  write_flows_csv(ss, ds.flows());
  const auto parsed = read_flows_csv(ss);
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->size(), ds.flows().size());
  for (std::size_t i = 0; i < parsed->size(); ++i) {
    const auto& a = (*parsed)[i];
    const auto& b = ds.flows()[i];
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.src_ip, b.src_ip);
    EXPECT_EQ(a.dst_ip, b.dst_ip);
    EXPECT_EQ(a.proto, b.proto);
    EXPECT_EQ(a.src_port, b.src_port);
    EXPECT_EQ(a.dst_port, b.dst_port);
    EXPECT_EQ(a.src_mac, b.src_mac);
    EXPECT_EQ(a.dst_mac, b.dst_mac);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.bytes, b.bytes);
  }
}

TEST(IoTextTest, MalformedRowsRejected) {
  {
    std::stringstream ss("time_ms,type,...\n123,X,1,2,10.0.0.1/32,1.2.3.4,\n");
    EXPECT_FALSE(read_control_csv(ss));
  }
  {
    std::stringstream ss("header\nnot,enough,fields\n");
    EXPECT_FALSE(read_control_csv(ss));
  }
  {
    std::stringstream ss("header\n1,2,3\n");
    EXPECT_FALSE(read_flows_csv(ss));
  }
  {
    std::stringstream ss("header\nzz:zz:zz:zz:zz:zz,abc\n");
    EXPECT_FALSE(read_macs_csv(ss));
  }
  {
    std::stringstream ss("header\n10.0.0.0/99,1\n");
    EXPECT_FALSE(read_origins_csv(ss));
  }
}

TEST(IoTextTest, EmptyBodiesAreValid) {
  std::stringstream control("header\n");
  ASSERT_TRUE(read_control_csv(control));
  EXPECT_TRUE(read_control_csv(control)->empty());
}

TEST(IoTextTest, DirectoryExportImportRoundTrip) {
  const Dataset ds = small_dataset();
  const std::string dir = testing::TempDir() + "/bw_csv_export";
  std::filesystem::remove_all(dir);
  export_dataset_csv(ds, dir);
  for (const char* name :
       {"control.csv", "flows.csv", "macs.csv", "origins.csv", "period.csv"}) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + name)) << name;
  }
  const Dataset loaded = import_dataset_csv(dir);
  EXPECT_EQ(loaded.control().size(), ds.control().size());
  EXPECT_EQ(loaded.flows().size(), ds.flows().size());
  EXPECT_EQ(loaded.period(), ds.period());
  EXPECT_EQ(loaded.mac_table().size(), ds.mac_table().size());
  // Analyses on the re-imported dataset behave identically.
  const auto s1 = loaded.summary();
  const auto s2 = ds.summary();
  EXPECT_EQ(s1.dropped_packets, s2.dropped_packets);
  EXPECT_EQ(s1.blackholed_prefixes, s2.blackholed_prefixes);
  EXPECT_EQ(loaded.origin_asn(net::Ipv4(64, 0, 0, 1)),
            ds.origin_asn(net::Ipv4(64, 0, 0, 1)));
  std::filesystem::remove_all(dir);
}

TEST(IoTextTest, ImportMissingDirectoryThrows) {
  EXPECT_THROW((void)import_dataset_csv("/nonexistent-bw-dir"),
               std::runtime_error);
}

}  // namespace
}  // namespace bw::core
