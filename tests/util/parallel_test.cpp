#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>
#include <stdexcept>
#include <vector>

namespace bw::util {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(3);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SerialPoolRunsInlineInOrder) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  EXPECT_EQ(pool.concurrency(), 1u);
  std::vector<int> order;
  auto a = pool.submit([&] { order.push_back(1); });
  auto b = pool.submit([&] { order.push_back(2); });
  a.get();
  b.get();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, NestedSubmitCompletes) {
  ThreadPool pool(1);  // a single worker must not deadlock on nesting
  auto outer = pool.submit([&] {
    // The inner future is returned, not awaited on the worker thread.
    return pool.submit([] { return 7; });
  });
  auto inner = outer.get();
  EXPECT_EQ(inner.get(), 7);
}

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  for (const std::size_t workers : {0u, 1u, 3u, 7u}) {
    ThreadPool pool(workers);
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(pool, hits.size(),
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, PropagatesFirstException) {
  for (const std::size_t workers : {0u, 3u}) {
    ThreadPool pool(workers);
    std::atomic<int> executed{0};
    EXPECT_THROW(parallel_for(pool, 100,
                              [&](std::size_t i) {
                                executed.fetch_add(1);
                                if (i == 17) throw std::runtime_error("bad");
                              },
                              1),
                 std::runtime_error);
    // Remaining chunks are skipped, never lost: the call still returns.
    EXPECT_GE(executed.load(), 1);
  }
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(16 * 64);
  parallel_for(
      pool, 16,
      [&](std::size_t outer) {
        parallel_for(
            pool, 64,
            [&](std::size_t inner) { hits[outer * 64 + inner].fetch_add(1); },
            1);
      },
      1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NestedUseInsideSubmittedTask) {
  ThreadPool pool(2);
  auto f = pool.submit([&] {
    long sum = 0;
    std::mutex m;
    parallel_for(pool, 500, [&](std::size_t i) {
      const std::lock_guard<std::mutex> lock(m);
      sum += static_cast<long>(i);
    });
    return sum;
  });
  EXPECT_EQ(f.get(), 500L * 499 / 2);
}

TEST(ParallelMapTest, ResultsAreInIndexOrderAtAnyThreadCount) {
  std::vector<std::vector<int>> results;
  for (const std::size_t workers : {0u, 1u, 7u}) {
    ThreadPool pool(workers);
    results.push_back(parallel_map(
        pool, 257, [](std::size_t i) { return static_cast<int>(i * i); }));
  }
  for (std::size_t i = 0; i < 257; ++i) {
    EXPECT_EQ(results[0][i], static_cast<int>(i * i));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(ParallelSortTest, MatchesStableSortAtAnyThreadCount) {
  // Keys collide heavily so stability is actually exercised.
  std::mt19937 rng(1234);
  std::vector<std::pair<int, int>> base(200000);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = {static_cast<int>(rng() % 97), static_cast<int>(i)};
  }
  auto comp = [](const auto& a, const auto& b) { return a.first < b.first; };

  auto expected = base;
  std::stable_sort(expected.begin(), expected.end(), comp);

  for (const std::size_t workers : {0u, 1u, 3u, 7u}) {
    ThreadPool pool(workers);
    auto sorted = base;
    parallel_sort(pool, sorted.begin(), sorted.end(), comp);
    EXPECT_EQ(sorted, expected) << "workers=" << workers;
  }
}

TEST(ParallelSortTest, SmallAndEmptyRanges) {
  ThreadPool pool(3);
  std::vector<int> empty;
  parallel_sort(pool, empty.begin(), empty.end());
  EXPECT_TRUE(empty.empty());

  std::vector<int> small{3, 1, 2};
  parallel_sort(pool, small.begin(), small.end());
  EXPECT_EQ(small, (std::vector<int>{1, 2, 3}));
}

TEST(ThreadPoolTest, ConfiguredConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::configured_concurrency(), 1u);
}

}  // namespace
}  // namespace bw::util
