# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bw_util_test[1]_include.cmake")
include("/root/repo/build/tests/bw_net_test[1]_include.cmake")
include("/root/repo/build/tests/bw_bgp_test[1]_include.cmake")
include("/root/repo/build/tests/bw_flow_test[1]_include.cmake")
include("/root/repo/build/tests/bw_peeringdb_test[1]_include.cmake")
include("/root/repo/build/tests/bw_ixp_test[1]_include.cmake")
include("/root/repo/build/tests/bw_gen_test[1]_include.cmake")
include("/root/repo/build/tests/bw_core_test[1]_include.cmake")
include("/root/repo/build/tests/bw_property_test[1]_include.cmake")
include("/root/repo/build/tests/bw_integration_test[1]_include.cmake")
