#include "net/ipv4.hpp"

#include <charconv>
#include <cstdio>

namespace bw::net {

std::optional<Ipv4> Ipv4::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    const auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || next == p || octet > 255) return std::nullopt;
    // Reject leading zeros like "01" (ambiguous octal-style notation).
    if (next - p > 1 && *p == '0') return std::nullopt;
    value = (value << 8) | octet;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4(value);
}

std::string Ipv4::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

}  // namespace bw::net
