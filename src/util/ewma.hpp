// Exponentially Weighted Moving Average anomaly detection, exactly as
// specified in Section 5.3 of the paper:
//
//   alpha = 2 / (s + 1)   with window s = 288 five-minute slots (24 h)
//   w_i   = (1 - alpha)^i  (i = 0 is the most recent value)
//   y_t   = sum_i w_i * x_{t-i} / sum_i w_i
//
// A value is anomalous when it exceeds the moving average of the *preceding*
// window by `threshold_sd` weighted standard deviations (2.5 by default; the
// paper reports stable results up to 10). Detection requires a full window:
// no anomaly can fire within the first `window` samples.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bw::util {

struct EwmaConfig {
  std::size_t window{288};    ///< slots per window (paper: 288 x 5 min = 24 h)
  double threshold_sd{2.5};   ///< anomaly threshold in weighted SDs
  double min_sd{1e-9};        ///< SD floor to avoid flagging flat-line jitter
};

/// Result of running the detector over one feature series.
struct EwmaSeries {
  std::vector<double> average;   ///< y_t per slot (0 while window incomplete)
  std::vector<double> stddev;    ///< weighted SD per slot
  std::vector<bool> anomalous;   ///< x_t > y_{t-1} + threshold * sd_{t-1}
};

/// Streaming EWMA detector over a fixed-size ring of recent values.
class EwmaDetector {
 public:
  explicit EwmaDetector(EwmaConfig config = {});

  /// Feed the next sample; returns true when it is anomalous w.r.t. the
  /// window *before* it (the sample is then incorporated for later calls).
  bool push(double x);

  [[nodiscard]] std::size_t samples_seen() const noexcept { return seen_; }
  [[nodiscard]] bool window_full() const noexcept { return seen_ >= cfg_.window; }
  /// Current weighted moving average of the retained window (0 if empty).
  [[nodiscard]] double current_average() const;
  [[nodiscard]] double current_stddev() const;
  [[nodiscard]] const EwmaConfig& config() const noexcept { return cfg_; }

  void reset();

 private:
  void window_values(std::vector<double>& values_newest_first) const;
  void recompute_sums();

  EwmaConfig cfg_;
  std::vector<double> ring_;
  std::vector<double> weights_;  ///< w_i, i = 0 newest
  std::size_t head_{0};          ///< next write position
  std::size_t size_{0};          ///< values currently retained
  std::size_t seen_{0};
  // O(1) running weighted moments (renormalised periodically for drift).
  double decay_{1.0};
  double oldest_weight_{0.0};
  double weighted_sum_{0.0};
  double weighted_sq_sum_{0.0};
  double weight_total_{0.0};
};

/// Run the detector over a whole series (convenience for offline analysis).
[[nodiscard]] EwmaSeries ewma_scan(std::span<const double> series,
                                   EwmaConfig config = {});

}  // namespace bw::util
