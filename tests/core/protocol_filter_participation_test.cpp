#include <gtest/gtest.h>

#include "core/filtering.hpp"
#include "core/participation.hpp"
#include "core/protocol_mix.hpp"
#include "corpus.hpp"

namespace bw::core {
namespace {

using testutil::World;

// Fixture with two attack events (anomaly before RTBH) and one quiet event:
//  e1: pure NTP+DNS amplification (fully filterable)
//  e2: UDP random-port flood (not filterable by amp ports)
//  e3: no attack, no anomaly (must be excluded from all three analyses)
class AttackAnalysisTest : public ::testing::Test {
 protected:
  AttackAnalysisTest() : world_({0, util::days(8)}, 0) {}

  void add_event(bgp::UpdateLog& control, net::Ipv4 victim, util::TimeMs t0) {
    control.push_back(world_.platform->service().make_announce(
        t0, World::kVictimAsn, 50000, net::Prefix::host(victim)));
    control.push_back(world_.platform->service().make_withdraw(
        t0 + util::kHour, World::kVictimAsn, 50000, net::Prefix::host(victim)));
  }

  Dataset make_dataset() {
    const util::TimeMs t0 = util::days(5);
    bgp::UpdateLog control;
    std::vector<flow::TrafficBurst> bursts;
    const net::Ipv4 v1(24, 0, 0, 1);
    const net::Ipv4 v2(24, 0, 0, 2);
    const net::Ipv4 v3(24, 0, 0, 3);
    add_event(control, v1, t0);
    add_event(control, v2, t0);
    add_event(control, v3, t0);

    const util::TimeRange attack{t0 - 8 * util::kMinute,
                                 t0 + 40 * util::kMinute};
    // e1: NTP (60%) + DNS (40%) reflection from distinct amplifiers in two
    // origins (64.0 -> acceptor, 64.1 -> rejector).
    for (int a = 0; a < 12; ++a) {
      bursts.push_back(world_.burst(
          net::Ipv4(64, 0, 2, static_cast<std::uint8_t>(a)), v1,
          net::Proto::kUdp, 123, 40000, attack, 3000, world_.acceptor));
    }
    for (int a = 0; a < 8; ++a) {
      bursts.push_back(world_.burst(
          net::Ipv4(64, 1, 2, static_cast<std::uint8_t>(a)), v1,
          net::Proto::kUdp, 53, 40001, attack, 3000, world_.rejector));
    }
    // e2: random high ports, spoofed sources (no origin attribution).
    for (int a = 0; a < 20; ++a) {
      bursts.push_back(world_.burst(
          net::Ipv4(192, 0, 3, static_cast<std::uint8_t>(a)), v2,
          net::Proto::kUdp, static_cast<net::Port>(20000 + 211 * a),
          static_cast<net::Port>(1000 + 97 * a), attack, 3000,
          world_.acceptor));
    }
    // e3: just a little steady traffic well before the event.
    for (int day = 0; day < 6; ++day) {
      bursts.push_back(world_.burst(
          net::Ipv4(64, 0, 0, 9), v3, net::Proto::kTcp, 55555, 443,
          {day * util::kDay, day * util::kDay + util::kHour}, 8,
          world_.acceptor));
    }
    return world_.run(std::move(control), bursts);
  }

  World world_;
};

TEST_F(AttackAnalysisTest, ProtocolMixIdentifiesAmplification) {
  const Dataset dataset = make_dataset();
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  ASSERT_EQ(events.size(), 3u);
  const auto pre = compute_pre_rtbh(dataset, events);
  EXPECT_EQ(pre.data_anomaly_10m, 2u);

  const auto mix = compute_protocol_mix(dataset, events, pre);
  EXPECT_EQ(mix.events_considered, 2u);
  EXPECT_GT(mix.udp_share, 0.99);
  EXPECT_LT(mix.tcp_share, 0.01);
  // e1 has exactly two amplification protocols, e2 none.
  EXPECT_EQ(mix.amp_protocol_events[2], 1u);
  EXPECT_EQ(mix.amp_protocol_events[0], 1u);
  bool saw_ntp = false;
  bool saw_dns = false;
  for (const auto& [name, count] : mix.protocol_event_counts) {
    if (name == "NTP") saw_ntp = count == 1;
    if (name == "DNS") saw_dns = count == 1;
  }
  EXPECT_TRUE(saw_ntp);
  EXPECT_TRUE(saw_dns);
}

TEST_F(AttackAnalysisTest, FilteringCoverage) {
  const Dataset dataset = make_dataset();
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  const auto pre = compute_pre_rtbh(dataset, events);
  const auto filt = compute_filtering(dataset, events, pre);
  ASSERT_EQ(filt.coverage.size(), 2u);
  // One event fully coverable, one not at all.
  const double lo = std::min(filt.coverage[0], filt.coverage[1]);
  const double hi = std::max(filt.coverage[0], filt.coverage[1]);
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
  EXPECT_NEAR(filt.fully_filterable_fraction, 0.5, 1e-9);
}

TEST_F(AttackAnalysisTest, ParticipationAttribution) {
  const Dataset dataset = make_dataset();
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  const auto pre = compute_pre_rtbh(dataset, events);
  const auto part = compute_participation(dataset, events, pre);

  // Only e1 carries amplification traffic.
  EXPECT_EQ(part.attacks, 1u);
  EXPECT_NEAR(part.avg_amplifiers_per_attack, 20.0, 0.1);
  EXPECT_NEAR(part.avg_handover_per_attack, 2.0, 0.1);
  EXPECT_NEAR(part.avg_origins_per_attack, 2.0, 0.1);
  ASSERT_EQ(part.handover.size(), 2u);
  EXPECT_DOUBLE_EQ(part.handover[0].event_share, 1.0);
  ASSERT_EQ(part.origins.size(), 2u);
  for (const auto& o : part.origins) {
    EXPECT_TRUE(o.asn == 210000 || o.asn == 210001);
    EXPECT_DOUBLE_EQ(o.event_share, 1.0);
  }
  // Traffic shares sum to ~1 across origins.
  double share = 0.0;
  for (const auto& o : part.origins) share += o.traffic_share;
  EXPECT_NEAR(share, 1.0, 1e-9);
}

}  // namespace
}  // namespace bw::core
