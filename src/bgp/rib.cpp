#include "bgp/rib.hpp"

#include <algorithm>

namespace bw::bgp {

bool BlackholeHistory::Entry::active_at(util::TimeMs t) const {
  if (open_since && t >= *open_since) return true;
  // Binary search the closed, begin-sorted intervals.
  auto it = std::upper_bound(
      closed.begin(), closed.end(), t,
      [](util::TimeMs value, const util::TimeRange& r) { return value < r.begin; });
  if (it == closed.begin()) return false;
  --it;
  return it->contains(t);
}

void BlackholeHistory::open(const net::Prefix& prefix, util::TimeMs t) {
  Entry* entry = trie_.find(prefix);
  if (entry == nullptr) {
    trie_.insert(prefix, Entry{});
    entry = trie_.find(prefix);
  }
  if (!entry->open_since) entry->open_since = t;
}

void BlackholeHistory::close(const net::Prefix& prefix, util::TimeMs t) {
  Entry* entry = trie_.find(prefix);
  if (entry == nullptr || !entry->open_since) return;
  const util::TimeMs begin = *entry->open_since;
  entry->open_since.reset();
  if (t > begin) entry->closed.push_back({begin, t});
}

void BlackholeHistory::finalize(util::TimeMs end_time) {
  std::vector<net::Prefix> open_prefixes;
  trie_.for_each([&](const net::Prefix& p, const Entry& e) {
    if (e.open_since) open_prefixes.push_back(p);
  });
  for (const auto& p : open_prefixes) close(p, end_time);
  // Normalise interval order (closes happen in time order already, but a
  // prefix can be re-opened before an earlier close when updates carry
  // identical timestamps).
  trie_.for_each([&](const net::Prefix& p, const Entry&) {
    Entry* e = trie_.find(p);
    std::sort(e->closed.begin(), e->closed.end(),
              [](const util::TimeRange& a, const util::TimeRange& b) {
                return a.begin < b.begin;
              });
  });
}

bool BlackholeHistory::active_at(net::Ipv4 addr, util::TimeMs t) const {
  for (const auto& [prefix, entry] : trie_.matches(addr)) {
    if (entry->active_at(t)) return true;
  }
  return false;
}

bool BlackholeHistory::active_at(const net::Prefix& prefix,
                                 util::TimeMs t) const {
  const Entry* entry = trie_.find(prefix);
  return entry != nullptr && entry->active_at(t);
}

std::optional<net::Prefix> BlackholeHistory::covering_prefix(
    net::Ipv4 addr, util::TimeMs t) const {
  std::optional<net::Prefix> best;
  for (const auto& [prefix, entry] : trie_.matches(addr)) {
    if (entry->active_at(t)) best = prefix;  // matches() walks shortest-first
  }
  return best;
}

std::vector<util::TimeRange> BlackholeHistory::intervals(
    const net::Prefix& prefix) const {
  const Entry* entry = trie_.find(prefix);
  if (entry == nullptr) return {};
  std::vector<util::TimeRange> out = entry->closed;
  return out;
}

void BlackholeHistory::for_each(
    const std::function<void(const net::Prefix&,
                             const std::vector<util::TimeRange>&)>& fn) const {
  trie_.for_each(
      [&](const net::Prefix& p, const Entry& e) { fn(p, e.closed); });
}

bool Rib::offer(const Route& route, util::TimeMs t) {
  ++offered_;
  if (!policy_.accepts(route)) return false;
  ++accepted_;
  if (route.is_blackhole()) blackholes_.open(route.prefix, t);
  return true;
}

void Rib::withdraw(const net::Prefix& prefix, bool was_blackhole,
                   util::TimeMs t) {
  if (was_blackhole) blackholes_.close(prefix, t);
}

}  // namespace bw::bgp
