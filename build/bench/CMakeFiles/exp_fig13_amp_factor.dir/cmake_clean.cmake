file(REMOVE_RECURSE
  "CMakeFiles/exp_fig13_amp_factor.dir/exp_fig13_amp_factor.cpp.o"
  "CMakeFiles/exp_fig13_amp_factor.dir/exp_fig13_amp_factor.cpp.o.d"
  "exp_fig13_amp_factor"
  "exp_fig13_amp_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig13_amp_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
