// Figure 14: relative amount of dropped packets per event if filtered by
// known UDP amplification signatures instead of blanket blackholing
// (Section 5.5).
//
// Paper: 90% of the attack-correlated RTBH events could be handled
// completely by dropping traffic from an a-priori known amplification port
// list; the remaining 10% use random/increasing ports or protocol mixes.
#include "common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig14");
  const auto& filt = exp.report.filtering;

  bench::print_header("Fig. 14", "amp-port filter coverage per attack event");
  auto csv = bench::open_csv("fig14_finegrained", {"coverage", "cdf"});
  util::TextTable table({"filter coverage >=", "share of events"});
  for (const double bound : {0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    std::size_t count = 0;
    for (const double c : filt.coverage) {
      if (c >= bound) ++count;
    }
    table.add_row({util::fmt_percent(bound, 0),
                   util::fmt_percent(filt.coverage.empty()
                                         ? 0.0
                                         : static_cast<double>(count) /
                                               static_cast<double>(
                                                   filt.coverage.size()),
                                     1)});
  }
  std::cout << table;
  for (const auto& p : util::empirical_cdf(filt.coverage)) {
    csv->write_row({util::fmt_double(p.value, 4),
                    util::fmt_double(p.cumulative_fraction, 4)});
  }

  bench::print_paper_row("events fully coverable by known amp ports", "90%",
                         util::fmt_percent(filt.fully_filterable_fraction, 1));
  bench::print_paper_row(
      "attack events considered", "(events w/ anomaly + data)",
      util::fmt_count(static_cast<std::int64_t>(filt.events_considered)));
  return 0;
}
