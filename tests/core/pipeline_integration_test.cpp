// End-to-end integration: generate a small (but fully structured) synthetic
// scenario, run the complete analysis pipeline, and validate the recovered
// statistics against the generator's ground truth and the paper's shapes.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/stats.hpp"

namespace bw::core {
namespace {

gen::ScenarioConfig test_config() {
  gen::ScenarioConfig cfg;
  cfg.scale = 0.05;
  cfg.seed = 20191021;
  return cfg;
}

class PipelineIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    run_ = new ScenarioRun(run_scenario(test_config(), std::string{}));
    report_ = new AnalysisReport(run_pipeline(run_->dataset));
  }
  static void TearDownTestSuite() {
    delete report_;
    delete run_;
    report_ = nullptr;
    run_ = nullptr;
  }

  static ScenarioRun* run_;
  static AnalysisReport* report_;
};

ScenarioRun* PipelineIntegrationTest::run_ = nullptr;
AnalysisReport* PipelineIntegrationTest::report_ = nullptr;

TEST_F(PipelineIntegrationTest, CorpusHasBothPlanes) {
  const auto& s = report_->summary;
  EXPECT_GT(s.control_updates, 10000u);
  EXPECT_GT(s.flow_records, 100000u);
  EXPECT_GT(s.blackholed_prefixes, 300u);
  EXPECT_GT(s.dropped_packets, 10000u);
  EXPECT_LT(s.dropped_packets, s.sampled_packets);
}

TEST_F(PipelineIntegrationTest, MergedEventCountNearGroundTruth) {
  const std::size_t truth_events = run_->truth.events.size();
  EXPECT_GT(report_->events.size(), truth_events * 9 / 10);
  // Long gaps can split a scheduled event into a few merged ones.
  EXPECT_LT(report_->events.size(), truth_events * 3 / 2);
}

TEST_F(PipelineIntegrationTest, Table2ClassSharesMatchPaperShape) {
  const auto& pre = report_->pre;
  const double total = static_cast<double>(pre.total());
  ASSERT_GT(total, 0.0);
  const double no_data = static_cast<double>(pre.no_data) / total;
  const double anomaly = static_cast<double>(pre.data_anomaly_10m) / total;
  const double data_no = static_cast<double>(pre.data_no_anomaly) / total;
  // Paper Table 2: 46% / 27% / 27%.
  EXPECT_NEAR(no_data, 0.46, 0.10);
  EXPECT_NEAR(anomaly, 0.27, 0.08);
  EXPECT_NEAR(data_no, 0.27, 0.10);
  // Section 5.3: one third of events show an anomaly within one hour.
  EXPECT_GT(pre.anomaly_1h, pre.data_anomaly_10m);
}

TEST_F(PipelineIntegrationTest, AnomalyDetectionAgreesWithGroundTruth) {
  // Map merged events back to ground-truth attacks by (prefix, overlap).
  std::size_t attacks_detected = 0;
  std::size_t attacks_total = 0;
  for (const auto& truth_ev : run_->truth.events) {
    if (!truth_ev.has_attack || truth_ev.manual_reaction) continue;
    ++attacks_total;
    for (std::size_t e = 0; e < report_->events.size(); ++e) {
      const auto& ev = report_->events[e];
      if (ev.prefix == truth_ev.prefix &&
          ev.span.overlaps(truth_ev.rtbh_span)) {
        if (report_->pre.per_event[e].anomaly_within_10min) {
          ++attacks_detected;
        }
        break;
      }
    }
  }
  ASSERT_GT(attacks_total, 100u);
  // The bulk of automatic-reaction attacks must be recovered from samples.
  EXPECT_GT(static_cast<double>(attacks_detected) /
                static_cast<double>(attacks_total),
            0.70);
}

TEST_F(PipelineIntegrationTest, DropRatesMatchPaperShape) {
  const auto& drop = report_->drop;
  double rate32 = 0.0;
  double rate24 = 0.0;
  for (const auto& s : drop.by_length) {
    if (s.length == 32) rate32 = s.packet_drop_rate();
    if (s.length == 24) rate24 = s.packet_drop_rate();
  }
  // Paper Fig. 5: /32 ~50% dropped; /22-/24 93-99%; /32 carries ~99.9%.
  EXPECT_NEAR(rate32, 0.50, 0.15);
  EXPECT_GT(rate24, 0.80);  // paper Fig. 6: /24 rates range 82-100%
  EXPECT_GT(drop.traffic_share(32), 0.95);
  // Fig. 6: /32 per-event drop rates spread widely.
  ASSERT_GT(drop.event_rates_len32.size(), 100u);
  const double q1 = util::quantile(drop.event_rates_len32, 0.25);
  const double q3 = util::quantile(drop.event_rates_len32, 0.75);
  EXPECT_LT(q1, 0.5);   // paper: 0.30
  EXPECT_GT(q3, 0.65);  // paper: 0.88 — our spread is somewhat narrower
  // Fig. 7: the top sources split into droppers, forwarders, inconsistent.
  const auto top = summarize_top_sources(drop, 100);
  EXPECT_GT(top.full_droppers, 0u);
  EXPECT_GT(top.full_forwarders, 0u);
  EXPECT_GT(top.traffic_share_of_total, 0.5);
}

TEST_F(PipelineIntegrationTest, ProtocolMixIsUdpAmplification) {
  const auto& mix = report_->protocols;
  ASSERT_GT(mix.events_considered, 100u);
  EXPECT_GT(mix.udp_share, 0.90);  // paper: 99.5%
  // Table 3: most events use 1-2 amplification protocols.
  const double one_or_two =
      mix.amp_event_fraction(1) + mix.amp_event_fraction(2);
  EXPECT_GT(one_or_two, 0.6);
  ASSERT_FALSE(mix.protocol_event_counts.empty());
  // cLDAP / NTP / DNS dominate.
  const auto& top = mix.protocol_event_counts.front().first;
  EXPECT_TRUE(top == "cLDAP" || top == "NTP" || top == "DNS") << top;
}

TEST_F(PipelineIntegrationTest, FilteringMostlyComplete) {
  // Paper Fig. 14: ~90% of attack events fully coverable by amp filters.
  ASSERT_GT(report_->filtering.events_considered, 50u);
  EXPECT_GT(report_->filtering.fully_filterable_fraction, 0.75);
  EXPECT_LT(report_->filtering.fully_filterable_fraction, 0.99);
}

TEST_F(PipelineIntegrationTest, ParticipationIsDistributed) {
  const auto& part = report_->participation;
  ASSERT_GT(part.attacks, 50u);
  ASSERT_FALSE(part.origins.empty());
  // Fig. 15: the top origin participates in a large share of attacks but
  // carries only a small traffic share.
  EXPECT_GT(part.origins.front().event_share, 0.3);
  EXPECT_LT(part.origins.front().traffic_share,
            part.origins.front().event_share);
  EXPECT_GT(part.avg_origins_per_attack, 5.0);
  EXPECT_GT(part.avg_amplifiers_per_attack, part.avg_origins_per_attack);
}

TEST_F(PipelineIntegrationTest, HostClassificationMatchesTruthRoles) {
  const auto& ports = report_->ports;
  ASSERT_GT(ports.clients, 0u);
  ASSERT_GT(ports.servers, 0u);
  // Paper Table 4: ~4:1 clients to servers.
  const double ratio = static_cast<double>(ports.clients) /
                       static_cast<double>(ports.servers);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 7.0);

  // Cross-check detected roles against generator ground truth.
  std::unordered_map<std::uint32_t, gen::HostRole> roles;
  for (const auto& h : run_->truth.hosts) roles[h.ip.value()] = h.role;
  std::size_t checked = 0;
  std::size_t agree = 0;
  for (const auto& h : ports.hosts) {
    if (h.classification == HostClass::kUnclassified) continue;
    const auto it = roles.find(h.ip.value());
    if (it == roles.end()) continue;
    ++checked;
    const bool truth_client = it->second == gen::HostRole::kClient;
    if (truth_client == (h.classification == HostClass::kClient)) ++agree;
  }
  ASSERT_GT(checked, 50u);
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(checked), 0.9);
}

TEST_F(PipelineIntegrationTest, RadvizClientsOnClientSide) {
  std::size_t agree = 0;
  std::size_t total = 0;
  for (const auto& p : report_->radviz.points) {
    if (p.classification == HostClass::kUnclassified) continue;
    ++total;
    if (p.client_side == (p.classification == HostClass::kClient)) ++agree;
  }
  ASSERT_GT(total, 100u);
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.85);
}

TEST_F(PipelineIntegrationTest, CollateralDamageObserved) {
  EXPECT_GT(report_->collateral.servers_considered, 10u);
  EXPECT_FALSE(report_->collateral.events.empty());
  EXPECT_GT(report_->collateral.total_dropped_packets, 0u);
  EXPECT_LE(report_->collateral.total_dropped_packets,
            report_->collateral.total_top_port_packets);
}

TEST_F(PipelineIntegrationTest, ClassificationRecoversPlantedUseCases) {
  const auto& cls = report_->classes;
  const double total = static_cast<double>(cls.total());
  // Fig. 19 shape: ~27% infrastructure, ~60%+ other, small zombie and
  // squatting slices.
  EXPECT_NEAR(static_cast<double>(cls.infrastructure) / total, 0.27, 0.08);
  EXPECT_GT(static_cast<double>(cls.other) / total, 0.5);
  EXPECT_GT(cls.zombies, 0u);
  EXPECT_GT(cls.squatting, 0u);
  // Planted squatting prefixes are recovered.
  EXPECT_GE(cls.squatting_prefixes,
            run_->truth.squatting_prefixes.size() / 2);
  // Most planted zombies survive as zombie candidates.
  EXPECT_GT(cls.zombies, run_->truth.zombie_addresses.size() / 2);
}

TEST(ScenarioCacheTest, SecondLoadHitsCache) {
  const std::string dir = testing::TempDir() + "/bw_cache_test";
  std::filesystem::remove_all(dir);
  gen::ScenarioConfig cfg;
  cfg.scale = 0.01;
  cfg.seed = 7;
  const ScenarioRun first = run_scenario(cfg, dir);
  ASSERT_EQ(std::distance(std::filesystem::directory_iterator(dir),
                          std::filesystem::directory_iterator{}),
            1);
  const ScenarioRun second = run_scenario(cfg, dir);
  EXPECT_EQ(first.dataset.flows().size(), second.dataset.flows().size());
  EXPECT_EQ(first.dataset.control().size(), second.dataset.control().size());
  EXPECT_EQ(first.peer_asns, second.peer_asns);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bw::core
