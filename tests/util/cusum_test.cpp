#include "util/cusum.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace bw::util {
namespace {

TEST(CusumTest, NoAlarmBeforeBaselineReady) {
  CusumDetector det({.window = 50});
  for (int i = 0; i < 49; ++i) {
    EXPECT_FALSE(det.push(1000.0));
    EXPECT_FALSE(det.baseline_ready());
  }
}

TEST(CusumTest, DetectsStepChange) {
  CusumDetector det({.window = 50, .slack_k = 0.5, .threshold_h = 5.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) det.push(10.0 + rng.uniform(-1.0, 1.0));
  // A sustained shift must alarm within a few samples.
  bool alarmed = false;
  for (int i = 0; i < 10 && !alarmed; ++i) alarmed = det.push(100.0);
  EXPECT_TRUE(alarmed);
}

TEST(CusumTest, AccumulatesSlowDrift) {
  // CUSUM's advantage over per-slot thresholding: many small exceedances
  // accumulate into an alarm even when no single sample is extreme.
  CusumDetector det({.window = 50, .slack_k = 0.25, .threshold_h = 6.0});
  Rng rng(2);
  for (int i = 0; i < 100; ++i) det.push(10.0 + rng.uniform(-1.0, 1.0));
  bool alarmed = false;
  for (int i = 0; i < 40 && !alarmed; ++i) {
    alarmed = det.push(11.5 + rng.uniform(-1.0, 1.0));  // +~1.5 SD shift
  }
  EXPECT_TRUE(alarmed);
}

TEST(CusumTest, FlatSeriesNeverAlarms) {
  CusumDetector det({.window = 20});
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(det.push(5.0));
  }
}

TEST(CusumTest, StatisticResetsAfterAlarm) {
  CusumDetector det({.window = 20, .threshold_h = 3.0});
  for (int i = 0; i < 40; ++i) det.push(1.0);
  bool alarmed = false;
  for (int i = 0; i < 5 && !alarmed; ++i) alarmed = det.push(50.0);
  ASSERT_TRUE(alarmed);
  EXPECT_EQ(det.statistic(), 0.0);
}

TEST(CusumTest, ResetClearsEverything) {
  CusumDetector det({.window = 10});
  for (int i = 0; i < 20; ++i) det.push(3.0);
  det.reset();
  EXPECT_FALSE(det.baseline_ready());
  EXPECT_EQ(det.statistic(), 0.0);
}

}  // namespace
}  // namespace bw::util
