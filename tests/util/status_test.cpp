#include "util/status.hpp"

#include <gtest/gtest.h>

namespace bw::util {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
  EXPECT_EQ(s, ok_status());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = data_loss("truncated row");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "truncated row");
  EXPECT_EQ(s.to_string(), "DATA_LOSS: truncated row");
}

TEST(Status, ErrorWithOkCodeBecomesInternal) {
  const Status s = Status::error(StatusCode::kOk, "impossible");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(Status, WithContextPrependsFrames) {
  const Status leaf = invalid_argument("bad src_ip 'x'");
  const Status mid = leaf.with_context("line 17");
  const Status top = mid.with_context("flows.csv");
  EXPECT_EQ(top.message(), "flows.csv: line 17: bad src_ip 'x'");
  EXPECT_EQ(top.code(), StatusCode::kInvalidArgument);
  // Context on an OK status is a no-op.
  EXPECT_EQ(ok_status().with_context("load"), ok_status());
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = not_found("missing.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, RejectsOkStatusConstruction) {
  Result<int> r{Status()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace bw::util
