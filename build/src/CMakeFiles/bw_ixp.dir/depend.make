# Empty dependencies file for bw_ixp.
# This may be replaced when dependencies are built.
