// Serial-vs-sharded determinism of corpus generation: the scenario's
// emission plan may be cut into any number of shards and replayed on any
// number of threads, and the merged corpus must stay byte-identical — the
// contract that lets bw-generate parallelize without changing a single
// analysis result. Verified here over the saved .bwds content hash for
// thread counts {1, 2, 8} and three seeds, plus the legacy single-slice
// Platform::run path and the shard-planner invariants.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "gen/shard.hpp"
#include "util/parallel.hpp"

namespace bw {
namespace {

gen::ScenarioConfig test_config(std::uint64_t seed) {
  gen::ScenarioConfig cfg;
  cfg.scale = 0.03;
  cfg.seed = seed;
  return cfg;
}

/// FNV-1a over the saved .bwds bytes: the corpus identity the acceptance
/// contract is stated in.
std::uint64_t corpus_hash(const core::Dataset& dataset, const std::string& tag) {
  const std::string path =
      testing::TempDir() + "/bw_shard_determinism_" + tag + ".bwds";
  dataset.save(path);
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good());
  std::uint64_t h = 0xcbf29ce484222325ULL;
  char c;
  while (is.get(c)) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::filesystem::remove(path);
  return h;
}

std::uint64_t generate_hash(std::uint64_t seed, std::size_t threads) {
  util::ThreadPool pool(threads - 1);
  const core::ScenarioRun run =
      core::run_scenario(test_config(seed), std::string{}, &pool);
  return corpus_hash(run.dataset,
                     std::to_string(seed) + "_" + std::to_string(threads));
}

TEST(ShardDeterminismTest, CorpusHashInvariantAcrossThreadCounts) {
  const std::uint64_t seeds[] = {20191021, 7, 20260806};
  std::vector<std::uint64_t> serial_hashes;
  for (const std::uint64_t seed : seeds) {
    const std::uint64_t serial = generate_hash(seed, 1);
    serial_hashes.push_back(serial);
    EXPECT_EQ(serial, generate_hash(seed, 2)) << "seed " << seed;
    EXPECT_EQ(serial, generate_hash(seed, 8)) << "seed " << seed;
  }
  // Different seeds must still produce different corpora — a hash function
  // that collapsed everything would vacuously pass the equalities above.
  EXPECT_NE(serial_hashes[0], serial_hashes[1]);
  EXPECT_NE(serial_hashes[0], serial_hashes[2]);
  EXPECT_NE(serial_hashes[1], serial_hashes[2]);
}

TEST(ShardDeterminismTest, LegacySingleSliceRunMatchesShardedScenario) {
  const gen::ScenarioConfig cfg = test_config(20191021);

  gen::Scenario scenario(cfg);
  ixp::Platform platform(gen::Scenario::platform_config(cfg));
  scenario.install(platform);
  ixp::RunResult result =
      platform.run(scenario.control(), scenario.traffic_source());
  const core::Dataset legacy =
      core::Dataset::from_run(std::move(result), platform);

  EXPECT_EQ(corpus_hash(legacy, "legacy"), generate_hash(cfg.seed, 8));
}

TEST(ShardDeterminismTest, PlannerCoversPlanContiguously) {
  gen::Scenario scenario(test_config(20191021));
  ixp::Platform platform(gen::Scenario::platform_config(test_config(20191021)));
  scenario.install(platform);
  const std::vector<gen::EmissionUnit> plan = scenario.emission_plan();
  ASSERT_FALSE(plan.empty());

  // Anchor-ordered plan.
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan[i - 1].anchor, plan[i].anchor);
  }

  for (const std::size_t shard_count : {1u, 2u, 7u, 32u}) {
    const auto shards = gen::plan_shards(plan, shard_count);
    ASSERT_FALSE(shards.empty());
    EXPECT_LE(shards.size(), shard_count);
    EXPECT_EQ(shards.front().begin, 0u);
    EXPECT_EQ(shards.back().end, plan.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
      EXPECT_LT(shards[i].begin, shards[i].end);  // non-empty
      if (i > 0) EXPECT_EQ(shards[i - 1].end, shards[i].begin);  // contiguous
    }
  }

  // Degenerate inputs.
  EXPECT_TRUE(gen::plan_shards({}, 4).empty());
  const auto one = gen::plan_shards(std::span(plan.data(), 1), 16);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.front().end, 1u);
}

}  // namespace
}  // namespace bw
