// Figure 10: fraction of RTBH events in all RTBH announcements as a
// function of the merge threshold delta (Section 5.1).
//
// Paper: the last significant drop happens up to delta = 10 minutes; at
// that threshold 400k announcements collapse into 34k events (8.5%). The
// delta = infinity lower bound equals the number of unique prefixes.
#include "common.hpp"
#include "core/event_merge.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig10");

  std::vector<util::DurationMs> deltas;
  for (const double m : {0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0, 15.0, 20.0,
                         30.0, 60.0, 120.0, 300.0}) {
    deltas.push_back(util::minutes(m));
  }
  const auto sweep = core::merge_sweep(exp.run.dataset.blackhole_updates(),
                                       exp.run.dataset.period().end, deltas);

  bench::print_header("Fig. 10", "event fraction vs merge threshold delta");
  util::TextTable table({"delta", "events", "events/announcements"});
  auto csv = bench::open_csv("fig10_merge_threshold",
                             {"delta_ms", "events", "fraction"});
  for (const auto& p : sweep) {
    const std::string label =
        p.delta < 0 ? "infinity" : util::format_duration(p.delta);
    table.add_row({label, util::fmt_count(static_cast<std::int64_t>(p.events)),
                   util::fmt_percent(p.event_fraction, 2)});
    csv->write_row({std::to_string(p.delta), std::to_string(p.events),
                    util::fmt_double(p.event_fraction, 5)});
  }
  std::cout << table;

  double at10 = 0.0;
  std::size_t events10 = 0;
  for (const auto& p : sweep) {
    if (p.delta == util::minutes(10.0)) {
      at10 = p.event_fraction;
      events10 = p.events;
    }
  }
  bench::print_paper_row("event fraction at delta = 10 min", "8.5%",
                         util::fmt_percent(at10, 1));
  bench::print_paper_row(
      "events at delta = 10 min", "34k (x scale)",
      util::fmt_count(static_cast<std::int64_t>(events10)));
  return 0;
}
