#include "core/io_text.hpp"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bw::core {

namespace {

/// ingest.* counters mirror LoadReport accounting process-wide so a run
/// manifest can state row totals without re-walking per-file reports.
struct IngestMetrics {
  obs::Counter* files;
  obs::Counter* rows_read;
  obs::Counter* rows_skipped;
  obs::Counter* rows_repaired;
};

const IngestMetrics& ingest_metrics() {
  static const IngestMetrics m = [] {
    auto& reg = obs::Registry::global();
    return IngestMetrics{&reg.counter("ingest.files"),
                         &reg.counter("ingest.rows_read"),
                         &reg.counter("ingest.rows_skipped"),
                         &reg.counter("ingest.rows_repaired")};
  }();
  return m;
}

/// Read one line, stripping the trailing '\r' a CRLF (Windows-edited) file
/// leaves on every field-terminating getline.
bool next_line(std::istream& is, std::string& line) {
  if (!std::getline(is, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

/// Split `line` on `sep` into `out` (cleared first). The views alias
/// `line`, so `out` is valid only until the line buffer changes.
void split_fields(std::string_view line, char sep,
                  std::vector<std::string_view>& out) {
  out.clear();
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(line.substr(start));
      return;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

template <typename T>
bool parse_int(std::string_view s, T& out) {
  if (s.empty()) return false;
  const char* end = s.data() + s.size();
  const auto [p, ec] = std::from_chars(s.data(), end, out);
  return ec == std::errc{} && p == end;
}

std::string field_error(const char* what, std::string_view value) {
  std::string msg = "bad ";
  msg += what;
  msg += " '";
  msg.append(value.substr(0, 32));
  if (value.size() > 32) msg += "...";
  msg += '\'';
  return msg;
}

/// Drive the shared streaming row loop: header handling, physical line
/// numbers, CRLF stripping, blank lines, and the strictness policy.
///
/// `parse(fields, allow_repair, repair_note)` consumes one row: on success
/// it appends to the caller's output and returns OK (setting *repair_note
/// when it salvaged the row); on failure it returns a Status describing the
/// first fault in the row. kStrict turns that Status into the load's
/// result; kSkip/kRepair count the row and continue.
template <typename ParseRow>
util::Status stream_rows(std::istream& is, const LoadOptions& options,
                         LoadReport& report, ParseRow&& parse) {
  const obs::TraceSpan span("ingest." + report.file, "io");
  const IngestMetrics& metrics = ingest_metrics();
  metrics.files->add();
  // Deltas against entry values so a pre-populated report is not
  // double-counted into the process-wide totals.
  const std::size_t read0 = report.rows_read;
  const std::size_t skipped0 = report.rows_skipped;
  const std::size_t repaired0 = report.rows_repaired;
  auto settle = [&] {
    metrics.rows_read->add(report.rows_read - read0);
    metrics.rows_skipped->add(report.rows_skipped - skipped0);
    metrics.rows_repaired->add(report.rows_repaired - repaired0);
  };
  std::string line;
  std::vector<std::string_view> fields;
  std::size_t line_no = 1;
  if (!next_line(is, line)) return util::ok_status();  // empty file
  const bool allow_repair = options.strictness == Strictness::kRepair;
  while (next_line(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    split_fields(line, ',', fields);
    std::string repair_note;
    util::Status row = parse(fields, allow_repair, &repair_note);
    if (row.ok()) {
      ++report.rows_read;
      if (!repair_note.empty()) {
        ++report.rows_repaired;
        report.note(line_no, "repaired: " + repair_note,
                    options.max_diagnostics);
      }
      continue;
    }
    if (options.strictness == Strictness::kStrict) {
      settle();
      return std::move(row).with_context("line " + std::to_string(line_no));
    }
    ++report.rows_skipped;
    report.note(line_no, row.message(), options.max_diagnostics);
  }
  settle();
  return util::ok_status();
}

/// Bind a caller-supplied (or local throwaway) report and default its file
/// name.
LoadReport& bind_report(LoadReport* out, LoadReport& local, const char* name) {
  LoadReport& report = out != nullptr ? *out : local;
  if (report.file.empty()) report.file = name;
  return report;
}

}  // namespace

void write_control_csv(std::ostream& os, const bgp::UpdateLog& log) {
  os << "time_ms,type,sender_asn,origin_asn,prefix,next_hop,communities\n";
  for (const auto& u : log) {
    os << u.time << ','
       << (u.type == bgp::UpdateType::kAnnounce ? 'A' : 'W') << ','
       << u.sender_asn << ',' << u.origin_asn << ',' << u.prefix.to_string()
       << ',' << u.next_hop.to_string() << ',';
    for (std::size_t i = 0; i < u.communities.size(); ++i) {
      if (i != 0) os << ' ';
      os << u.communities[i].to_string();
    }
    os << '\n';
  }
}

void write_flows_csv(std::ostream& os, const flow::FlowLog& flows) {
  os << "time_ms,src_ip,dst_ip,proto,src_port,dst_port,src_mac,dst_mac,"
        "packets,bytes\n";
  for (const auto& r : flows) {
    os << r.time << ',' << r.src_ip.to_string() << ',' << r.dst_ip.to_string()
       << ',' << static_cast<int>(r.proto) << ',' << r.src_port << ','
       << r.dst_port << ',' << r.src_mac.to_string() << ','
       << r.dst_mac.to_string() << ',' << r.packets << ',' << r.bytes << '\n';
  }
}

void write_macs_csv(std::ostream& os,
                    const std::unordered_map<net::Mac, bgp::Asn>& macs) {
  os << "mac,asn\n";
  for (const auto& [mac, asn] : macs) {
    os << mac.to_string() << ',' << asn << '\n';
  }
}

void write_origins_csv(
    std::ostream& os,
    const std::vector<std::pair<net::Prefix, bgp::Asn>>& origins) {
  os << "prefix,asn\n";
  for (const auto& [prefix, asn] : origins) {
    os << prefix.to_string() << ',' << asn << '\n';
  }
}

void export_dataset_csv(const Dataset& dataset, const std::string& directory) {
  std::filesystem::create_directories(directory);
  auto open = [&](const char* name) {
    std::ofstream os(directory + "/" + name, std::ios::trunc);
    if (!os) {
      throw std::runtime_error(std::string("export_dataset_csv: cannot open ") +
                               directory + "/" + name);
    }
    return os;
  };
  {
    auto os = open("control.csv");
    write_control_csv(os, dataset.control());
  }
  {
    auto os = open("flows.csv");
    write_flows_csv(os, dataset.flows());
  }
  {
    auto os = open("macs.csv");
    write_macs_csv(os, dataset.mac_table());
  }
  {
    auto os = open("origins.csv");
    write_origins_csv(os, dataset.origin_prefixes());
  }
  {
    auto os = open("period.csv");
    os << "begin_ms,end_ms\n"
       << dataset.period().begin << ',' << dataset.period().end << '\n';
  }
}

util::Result<bgp::UpdateLog> read_control_csv(std::istream& is,
                                              const LoadOptions& options,
                                              LoadReport* report_out) {
  bgp::UpdateLog log;
  LoadReport local;
  LoadReport& report = bind_report(report_out, local, "control.csv");
  std::vector<std::string_view> community_fields;
  util::Status st = stream_rows(
      is, options, report,
      [&](const std::vector<std::string_view>& f, bool allow_repair,
          std::string* repair_note) -> util::Status {
        if (f.size() != 7) {
          return util::data_loss("expected 7 fields, got " +
                                 std::to_string(f.size()));
        }
        bgp::Update u;
        if (!parse_int(f[0], u.time)) {
          return util::invalid_argument(field_error("time_ms", f[0]));
        }
        if (f[1] == "A") u.type = bgp::UpdateType::kAnnounce;
        else if (f[1] == "W") u.type = bgp::UpdateType::kWithdraw;
        else return util::invalid_argument(field_error("type", f[1]));
        if (!parse_int(f[2], u.sender_asn)) {
          return util::invalid_argument(field_error("sender_asn", f[2]));
        }
        if (!parse_int(f[3], u.origin_asn)) {
          return util::invalid_argument(field_error("origin_asn", f[3]));
        }
        const auto prefix = net::Prefix::parse(f[4]);
        if (!prefix) return util::invalid_argument(field_error("prefix", f[4]));
        const auto next_hop = net::Ipv4::parse(f[5]);
        if (!next_hop) {
          return util::invalid_argument(field_error("next_hop", f[5]));
        }
        u.prefix = *prefix;
        u.next_hop = *next_hop;
        if (!f[6].empty()) {
          split_fields(f[6], ' ', community_fields);
          for (const auto c : community_fields) {
            const auto community = bgp::Community::parse(c);
            if (!community) {
              // The communities list is the one optional field: a mangled
              // list is recoverable by dropping it (the update itself —
              // time, prefix, peers — survives).
              if (allow_repair) {
                u.communities.clear();
                *repair_note = field_error("communities", f[6]) + ", dropped";
                break;
              }
              return util::invalid_argument(field_error("community", c));
            }
            u.communities.push_back(*community);
          }
        }
        log.push_back(std::move(u));
        return util::ok_status();
      });
  if (!st.ok()) return std::move(st).with_context(report.file);
  return log;
}

util::Result<flow::FlowLog> read_flows_csv(std::istream& is,
                                           const LoadOptions& options,
                                           LoadReport* report_out) {
  flow::FlowLog flows;
  LoadReport local;
  LoadReport& report = bind_report(report_out, local, "flows.csv");
  util::Status st = stream_rows(
      is, options, report,
      [&](const std::vector<std::string_view>& f, bool allow_repair,
          std::string* repair_note) -> util::Status {
        // A truncated tail leaves the last row with fewer fields; rows with
        // 8+ intact leading fields are repairable (packets/bytes default).
        if (f.size() > 10 || (f.size() < 10 && !(allow_repair && f.size() >= 8))) {
          return util::data_loss("expected 10 fields, got " +
                                 std::to_string(f.size()));
        }
        flow::FlowRecord r;
        int proto = 0;
        if (!parse_int(f[0], r.time)) {
          return util::invalid_argument(field_error("time_ms", f[0]));
        }
        const auto src = net::Ipv4::parse(f[1]);
        if (!src) return util::invalid_argument(field_error("src_ip", f[1]));
        const auto dst = net::Ipv4::parse(f[2]);
        if (!dst) return util::invalid_argument(field_error("dst_ip", f[2]));
        if (!parse_int(f[3], proto)) {
          return util::invalid_argument(field_error("proto", f[3]));
        }
        if (!parse_int(f[4], r.src_port)) {
          return util::invalid_argument(field_error("src_port", f[4]));
        }
        if (!parse_int(f[5], r.dst_port)) {
          return util::invalid_argument(field_error("dst_port", f[5]));
        }
        const auto smac = net::Mac::parse(f[6]);
        if (!smac) return util::invalid_argument(field_error("src_mac", f[6]));
        const auto dmac = net::Mac::parse(f[7]);
        if (!dmac) return util::invalid_argument(field_error("dst_mac", f[7]));
        r.src_ip = *src;
        r.dst_ip = *dst;
        r.proto = static_cast<net::Proto>(proto);
        r.src_mac = *smac;
        r.dst_mac = *dmac;
        const bool volume_ok = f.size() == 10 && parse_int(f[8], r.packets) &&
                               parse_int(f[9], r.bytes);
        if (!volume_ok) {
          if (!allow_repair) {
            // Only reachable with 10 fields: shorter rows bailed above.
            return util::invalid_argument(field_error("packets/bytes", f[8]));
          }
          r.packets = 1;
          r.bytes = 0;
          *repair_note = "defaulted packets/bytes on damaged tail";
        }
        flows.push_back(r);
        return util::ok_status();
      });
  if (!st.ok()) return std::move(st).with_context(report.file);
  return flows;
}

util::Result<std::unordered_map<net::Mac, bgp::Asn>> read_macs_csv(
    std::istream& is, const LoadOptions& options, LoadReport* report_out) {
  std::unordered_map<net::Mac, bgp::Asn> macs;
  LoadReport local;
  LoadReport& report = bind_report(report_out, local, "macs.csv");
  util::Status st = stream_rows(
      is, options, report,
      [&](const std::vector<std::string_view>& f, bool /*allow_repair*/,
          std::string* /*repair_note*/) -> util::Status {
        if (f.size() != 2) {
          return util::data_loss("expected 2 fields, got " +
                                 std::to_string(f.size()));
        }
        const auto mac = net::Mac::parse(f[0]);
        if (!mac) return util::invalid_argument(field_error("mac", f[0]));
        bgp::Asn asn = 0;
        if (!parse_int(f[1], asn)) {
          return util::invalid_argument(field_error("asn", f[1]));
        }
        macs[*mac] = asn;
        return util::ok_status();
      });
  if (!st.ok()) return std::move(st).with_context(report.file);
  return macs;
}

util::Result<std::vector<std::pair<net::Prefix, bgp::Asn>>> read_origins_csv(
    std::istream& is, const LoadOptions& options, LoadReport* report_out) {
  std::vector<std::pair<net::Prefix, bgp::Asn>> origins;
  LoadReport local;
  LoadReport& report = bind_report(report_out, local, "origins.csv");
  util::Status st = stream_rows(
      is, options, report,
      [&](const std::vector<std::string_view>& f, bool /*allow_repair*/,
          std::string* /*repair_note*/) -> util::Status {
        if (f.size() != 2) {
          return util::data_loss("expected 2 fields, got " +
                                 std::to_string(f.size()));
        }
        const auto prefix = net::Prefix::parse(f[0]);
        if (!prefix) return util::invalid_argument(field_error("prefix", f[0]));
        bgp::Asn asn = 0;
        if (!parse_int(f[1], asn)) {
          return util::invalid_argument(field_error("asn", f[1]));
        }
        origins.emplace_back(*prefix, asn);
        return util::ok_status();
      });
  if (!st.ok()) return std::move(st).with_context(report.file);
  return origins;
}

util::Result<util::TimeRange> read_period_csv(std::istream& is) {
  std::string line;
  if (!next_line(is, line)) {
    return util::data_loss("period.csv: empty file");
  }
  if (!next_line(is, line)) {
    return util::data_loss("period.csv: missing period row");
  }
  std::vector<std::string_view> f;
  split_fields(line, ',', f);
  util::TimeRange period{0, 0};
  if (f.size() != 2 || !parse_int(f[0], period.begin) ||
      !parse_int(f[1], period.end)) {
    return util::data_loss("period.csv: malformed period row");
  }
  return period;
}

// --- legacy strict wrappers ---

std::optional<bgp::UpdateLog> read_control_csv(std::istream& is) {
  auto r = read_control_csv(is, LoadOptions{});
  if (!r.ok()) return std::nullopt;
  return std::move(r).value();
}

std::optional<flow::FlowLog> read_flows_csv(std::istream& is) {
  auto r = read_flows_csv(is, LoadOptions{});
  if (!r.ok()) return std::nullopt;
  return std::move(r).value();
}

std::optional<std::unordered_map<net::Mac, bgp::Asn>> read_macs_csv(
    std::istream& is) {
  auto r = read_macs_csv(is, LoadOptions{});
  if (!r.ok()) return std::nullopt;
  return std::move(r).value();
}

std::optional<std::vector<std::pair<net::Prefix, bgp::Asn>>> read_origins_csv(
    std::istream& is) {
  auto r = read_origins_csv(is, LoadOptions{});
  if (!r.ok()) return std::nullopt;
  return std::move(r).value();
}

util::Result<Dataset> load_dataset_csv(const std::string& directory,
                                       const LoadOptions& options,
                                       IngestReport* report_out) {
  IngestReport local;
  IngestReport& report = report_out != nullptr ? *report_out : local;
  report.files.clear();

  auto open = [&](const char* name,
                  std::ifstream& is) -> util::Status {
    is.open(directory + "/" + name);
    if (!is) {
      return util::not_found(std::string("cannot open ") + directory + "/" +
                             name);
    }
    return util::ok_status();
  };
  auto with_dir = [&](util::Status st) {
    return std::move(st).with_context("load_dataset_csv: " + directory);
  };

  std::ifstream control_is, flows_is, macs_is, origins_is, period_is;
  if (auto st = open("control.csv", control_is); !st.ok()) return with_dir(st);
  auto control =
      read_control_csv(control_is, options, &report.files.emplace_back());
  if (!control.ok()) return with_dir(control.status());

  if (auto st = open("flows.csv", flows_is); !st.ok()) return with_dir(st);
  auto flows = read_flows_csv(flows_is, options, &report.files.emplace_back());
  if (!flows.ok()) return with_dir(flows.status());

  if (auto st = open("macs.csv", macs_is); !st.ok()) return with_dir(st);
  auto macs = read_macs_csv(macs_is, options, &report.files.emplace_back());
  if (!macs.ok()) return with_dir(macs.status());

  if (auto st = open("origins.csv", origins_is); !st.ok()) return with_dir(st);
  auto origins =
      read_origins_csv(origins_is, options, &report.files.emplace_back());
  if (!origins.ok()) return with_dir(origins.status());

  if (auto st = open("period.csv", period_is); !st.ok()) return with_dir(st);
  auto period = read_period_csv(period_is);
  if (!period.ok()) return with_dir(period.status());

  Dataset::BuildOptions build;
  if (options.strictness != Strictness::kStrict) {
    // Degraded mode: a tolerant load also tolerates in-band damage —
    // duplicated rows and clock-skewed (out-of-period) records are
    // quarantined and accounted in Dataset::quality().
    build.dedupe_flows = true;
    build.quarantine_out_of_period = true;
  }
  return Dataset(std::move(control).value(), std::move(flows).value(),
                 std::move(macs).value(), std::move(origins).value(),
                 *period, build);
}

Dataset import_dataset_csv(const std::string& directory) {
  auto result = load_dataset_csv(directory, LoadOptions{});
  if (!result.ok()) {
    throw std::runtime_error("import_dataset_csv: " +
                             result.status().to_string());
  }
  return std::move(result).value();
}

}  // namespace bw::core
