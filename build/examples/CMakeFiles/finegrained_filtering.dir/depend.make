# Empty dependencies file for finegrained_filtering.
# This may be replaced when dependencies are built.
