# Empty compiler generated dependencies file for exp_fig03_rtbh_load.
# This may be replaced when dependencies are built.
