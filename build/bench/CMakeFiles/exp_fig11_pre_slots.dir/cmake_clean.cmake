file(REMOVE_RECURSE
  "CMakeFiles/exp_fig11_pre_slots.dir/exp_fig11_pre_slots.cpp.o"
  "CMakeFiles/exp_fig11_pre_slots.dir/exp_fig11_pre_slots.cpp.o.d"
  "exp_fig11_pre_slots"
  "exp_fig11_pre_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig11_pre_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
