#include "stream/ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace bw::stream {
namespace {

TEST(CeilPow2Test, RoundsUp) {
  EXPECT_EQ(ceil_pow2(0), 1u);
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(4), 4u);
  EXPECT_EQ(ceil_pow2(5), 8u);
  EXPECT_EQ(ceil_pow2(1000), 1024u);
  EXPECT_EQ(ceil_pow2(1024), 1024u);
}

TEST(SpscRingTest, CapacityRoundsToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
}

TEST(SpscRingTest, FifoOrderAcrossWraparound) {
  SpscRing<int> ring(4);
  int next_pop = 0;
  // Push/pop far past the capacity so head and tail wrap many times:
  // fill to the brim, then drain 3 of 4, so the cursors land on every
  // offset modulo the capacity.
  for (int v = 0; v < 1000; ++v) {
    ASSERT_TRUE(ring.try_push(v));
    if (ring.size() == ring.capacity()) {
      for (int k = 0; k < 3; ++k) {
        int out = -1;
        ASSERT_TRUE(ring.try_pop(out));
        EXPECT_EQ(out, next_pop++);
      }
    }
  }
  int out = -1;
  while (ring.try_pop(out)) EXPECT_EQ(out, next_pop++);
  EXPECT_EQ(next_pop, 1000);
}

TEST(SpscRingTest, FullRejectsAndEmptyRejects) {
  SpscRing<int> ring(2);
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out)) << "empty ring must reject pop";
  EXPECT_TRUE(ring.empty());
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  int rejected = 3;
  EXPECT_FALSE(ring.try_push(rejected)) << "full ring must reject push";
  EXPECT_EQ(rejected, 3) << "rejected element must be left untouched";
  EXPECT_EQ(ring.size(), 2u);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.try_push(rejected));  // room again after the pop
}

TEST(SpscRingTest, CapacityOneIsAHandoffCell) {
  SpscRing<int> ring(1);
  EXPECT_EQ(ring.capacity(), 1u);
  for (int v = 0; v < 100; ++v) {
    ASSERT_TRUE(ring.try_push(v));
    int blocked = -1;
    EXPECT_FALSE(ring.try_push(blocked));
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, v);
    EXPECT_FALSE(ring.try_pop(out));
  }
}

TEST(SpscRingTest, FrontPeeksWithoutPopping) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.front(), nullptr);
  ASSERT_TRUE(ring.try_push(7));
  ASSERT_TRUE(ring.try_push(8));
  ASSERT_NE(ring.front(), nullptr);
  EXPECT_EQ(*ring.front(), 7);
  EXPECT_EQ(ring.size(), 2u) << "front must not consume";
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_EQ(*ring.front(), 8);
}

TEST(SpscRingTest, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

}  // namespace
}  // namespace bw::stream
