#include "core/report.hpp"

#include <sstream>

#include "core/whatif.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace bw::core {

namespace {

std::string pct(double f, int p = 1) { return util::fmt_percent(f, p); }
std::string cnt(std::uint64_t v) {
  return util::fmt_count(static_cast<std::int64_t>(v));
}

}  // namespace

std::string render_markdown(const Dataset& dataset,
                            const AnalysisReport& report,
                            const WhatIfReport* whatif,
                            const ReportOptions& options) {
  std::ostringstream md;
  const auto s = report.summary;
  const double total_events =
      std::max<double>(static_cast<double>(report.events.size()), 1.0);

  md << "# " << options.title << "\n\n";
  md << "Measurement period: " << util::format_duration(
            dataset.period().length())
     << " | " << cnt(s.control_updates) << " BGP updates ("
     << cnt(s.blackhole_updates) << " RTBH-related) | " << cnt(s.flow_records)
     << " sampled flow records\n\n";

  // Data-quality section: only rendered when there is something to say, so
  // a clean run's document is unchanged by the degraded-mode machinery.
  const DataQuality& dq = report.data_quality;
  if (!dq.clean()) {
    md << "## Data quality\n\n";
    if (dq.degraded()) {
      md << "**Degraded run** — the following stages failed and their "
            "sections are empty:\n\n";
      for (const auto& stage : dq.stages) {
        if (stage.degraded) {
          md << "- `" << stage.name << "`"
             << (stage.timed_out ? " (timed out): " : ": ") << stage.error
             << "\n";
        }
      }
      md << "\n";
    }
    if (!dq.cache_incidents.empty()) {
      md << "**Cache incidents** — corrupt or unwritable cache files; "
            "corrupt caches were quarantined and the data regenerated:\n\n";
      for (const auto& incident : dq.cache_incidents) {
        md << "- `" << incident.path << "`";
        if (!incident.quarantined_to.empty()) {
          md << " (quarantined to `" << incident.quarantined_to << "`)";
        }
        md << ": " << incident.error << "\n";
      }
      md << "\n";
    }
    bool dirty_files = false;
    for (const auto& f : dq.files) dirty_files = dirty_files || !f.clean();
    if (dirty_files) {
      md << "| file | rows read | skipped | repaired |\n|---|---|---|---|\n";
      for (const auto& f : dq.files) {
        md << "| " << f.file << " | " << cnt(f.rows_read) << " | "
           << cnt(f.rows_skipped) << " | " << cnt(f.rows_repaired) << " |\n";
      }
      md << "\n";
    }
    const auto& q = dq.dataset;
    if (!q.clean()) {
      if (q.reordered_updates + q.reordered_flows > 0) {
        md << "- " << cnt(q.reordered_updates + q.reordered_flows)
           << " out-of-order rows re-sorted (" << cnt(q.reordered_updates)
           << " control, " << cnt(q.reordered_flows) << " flow)\n";
      }
      if (q.out_of_period_updates + q.out_of_period_flows > 0) {
        md << "- " << cnt(q.out_of_period_updates + q.out_of_period_flows)
           << " out-of-period records quarantined ("
           << cnt(q.out_of_period_updates) << " control, "
           << cnt(q.out_of_period_flows) << " flow)\n";
      }
      if (q.duplicate_flows > 0) {
        md << "- " << cnt(q.duplicate_flows)
           << " exact-duplicate flow records removed\n";
      }
      if (q.unknown_mac_flows > 0) {
        md << "- " << cnt(q.unknown_mac_flows)
           << " flow records with an unattributable MAC\n";
      }
      md << "\n";
    }
  }

  md << "## Blackholing activity\n\n";
  md << "- " << cnt(s.blackholed_prefixes) << " prefixes blackholed, merged "
     << "into " << cnt(report.events.size()) << " RTBH events (Δ = 10 min)\n";
  md << "- " << pct(static_cast<double>(s.dropped_packets) /
                    std::max<double>(static_cast<double>(s.sampled_packets), 1))
     << " of sampled packets were dropped\n\n";

  md << "## DDoS correlation (pre-RTBH classification)\n\n";
  md << "| class | events | share |\n|---|---|---|\n";
  md << "| no sampled traffic before the event | " << cnt(report.pre.no_data)
     << " | " << pct(static_cast<double>(report.pre.no_data) / total_events)
     << " |\n";
  md << "| traffic, no anomaly ≤ 10 min | " << cnt(report.pre.data_no_anomaly)
     << " | "
     << pct(static_cast<double>(report.pre.data_no_anomaly) / total_events)
     << " |\n";
  md << "| traffic + anomaly ≤ 10 min (DDoS-like) | "
     << cnt(report.pre.data_anomaly_10m) << " | "
     << pct(static_cast<double>(report.pre.data_anomaly_10m) / total_events)
     << " |\n\n";

  if (options.drop_table && !report.drop.by_length.empty()) {
    md << "## Blackhole acceptance\n\n";
    md << "| prefix length | traffic share | packets dropped |\n|---|---|---|\n";
    for (const auto& len : report.drop.by_length) {
      md << "| /" << static_cast<int>(len.length) << " | "
         << pct(report.drop.traffic_share(len.length), 2) << " | "
         << pct(len.packet_drop_rate()) << " |\n";
    }
    md << "\n";
    if (!report.drop.event_rates_len32.empty()) {
      md << "Per-event /32 drop-rate quartiles: "
         << pct(util::quantile(report.drop.event_rates_len32, 0.25)) << " / "
         << pct(util::quantile(report.drop.event_rates_len32, 0.50)) << " / "
         << pct(util::quantile(report.drop.event_rates_len32, 0.75))
         << " — host blackholes remain unpredictable.\n\n";
    }
    if (options.top_sources > 0 && !report.drop.sources_to_len32.empty()) {
      const auto top = summarize_top_sources(report.drop, 100);
      md << "Top-100 traffic sources towards /32 blackholes: "
         << top.full_droppers << " drop >99%, " << top.full_forwarders
         << " forward >99%, " << top.inconsistent << " inconsistent.\n\n";
      md << "| rank | AS | packets | dropped |\n|---|---|---|---|\n";
      const std::size_t n = std::min<std::size_t>(
          options.top_sources, report.drop.sources_to_len32.size());
      for (std::size_t i = 0; i < n; ++i) {
        const auto& src = report.drop.sources_to_len32[i];
        md << "| " << (i + 1) << " | AS" << src.asn << " | "
           << cnt(src.packets_total) << " | " << pct(src.drop_share()) << " |\n";
      }
      md << "\n";
    }
  }

  md << "## Attack traffic\n\n";
  md << "- Transport mix during attack-correlated events: "
     << pct(report.protocols.udp_share) << " UDP, "
     << pct(report.protocols.tcp_share) << " TCP\n";
  if (!report.protocols.protocol_event_counts.empty()) {
    md << "- Most common amplification protocols:";
    for (std::size_t i = 0;
         i < std::min<std::size_t>(3,
                                   report.protocols.protocol_event_counts.size());
         ++i) {
      md << (i == 0 ? " " : ", ")
         << report.protocols.protocol_event_counts[i].first;
    }
    md << "\n";
  }
  md << "- " << pct(report.filtering.fully_filterable_fraction)
     << " of attack events fully coverable by a static amplification-port "
        "filter\n\n";

  md << "## Victims\n\n";
  md << "- " << cnt(report.ports.clients) << " client-like and "
     << cnt(report.ports.servers)
     << " server-like blackholed hosts (port-stability classifier)\n";
  md << "- " << cnt(report.collateral.events.size())
     << " (server, event) pairs show service-port traffic during an active "
        "blackhole — collateral damage\n\n";

  md << "## Use-case classification\n\n";
  md << "| class | events | share |\n|---|---|---|\n";
  md << "| infrastructure protection | " << cnt(report.classes.infrastructure)
     << " | "
     << pct(static_cast<double>(report.classes.infrastructure) / total_events)
     << " |\n";
  md << "| squatting candidates | " << cnt(report.classes.squatting) << " | "
     << pct(static_cast<double>(report.classes.squatting) / total_events)
     << " |\n";
  md << "| zombie candidates | " << cnt(report.classes.zombies) << " | "
     << pct(static_cast<double>(report.classes.zombies) / total_events)
     << " |\n";
  md << "| other | " << cnt(report.classes.other) << " | "
     << pct(static_cast<double>(report.classes.other) / total_events)
     << " |\n\n";

  if (options.include_whatif && whatif != nullptr) {
    md << "## Mitigation what-if\n\n";
    md << "| strategy | attack dropped | legitimate dropped |\n|---|---|---|\n";
    for (const auto& o : whatif->outcomes) {
      md << "| " << to_string(o.strategy) << " | " << pct(o.efficacy())
         << " | " << pct(o.collateral()) << " |\n";
    }
    md << "\n";
  }
  return md.str();
}

}  // namespace bw::core
