#include "bgp/route.hpp"

#include <sstream>

namespace bw::bgp {

std::string Route::to_string() const {
  std::ostringstream os;
  os << prefix.to_string() << " nh " << next_hop.to_string() << " from AS"
     << sender_asn << " origin AS" << origin_asn;
  if (is_blackhole()) os << " [BLACKHOLE]";
  return os.str();
}

}  // namespace bw::bgp
