# Empty compiler generated dependencies file for exp_fig10_merge_threshold.
# This may be replaced when dependencies are built.
