// Monospace text-table renderer for the experiment harnesses. Every bench
// binary prints its paper rows/series through this so the outputs align and
// remain diffable between runs.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace bw::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  TextTable(std::initializer_list<std::string> header)
      : TextTable(std::vector<std::string>(header)) {}

  /// Append a data row; short rows are padded with empty cells, long rows
  /// are truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Render with a header rule and 2-space column gaps.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used by bench/report code.
[[nodiscard]] std::string fmt_double(double v, int precision = 2);
[[nodiscard]] std::string fmt_percent(double fraction, int precision = 1);
[[nodiscard]] std::string fmt_count(std::int64_t v);  ///< 12,345,678 grouping

}  // namespace bw::util
