// Shared CLI conventions for the bw-* tools.
//
// Exit codes are part of the tool contract (scripts and CI branch on them):
//   0  success
//   2  usage error (bad flags/arguments; nothing was attempted)
//   3  data error (input missing, malformed, or rejected by --strict;
//      also a generation run cancelled by --stage-timeout-s, which leaves
//      no usable corpus)
//   4  internal error (unexpected exception; a bug, not an input problem)
//
// Watchdog note: an *analysis* stage cancelled by --stage-timeout-s is the
// degraded-but-complete success path — bw-analyze still exits 0 and the
// timeout is reported in the data-quality section, mirroring how injected
// stage faults behave.
#pragma once

#include <iostream>
#include <string>

#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "util/atomic_file.hpp"

namespace bw::tools {

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitData = 3;
inline constexpr int kExitInternal = 4;

/// Observability outputs every bw-* tool offers:
///   --metrics-out FILE  run manifest + full metrics snapshot (JSON)
///   --trace-out FILE    Chrome trace (chrome://tracing, Perfetto)
/// Collection itself never alters results; the reports stay byte-identical
/// with these on or off.
struct ObsOptions {
  std::string metrics_out;
  std::string trace_out;

  /// Handle one argv slot. Returns true when consumed (possibly advancing
  /// `i` past the flag's value).
  bool parse(int argc, char** argv, int& i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
      return true;
    }
    if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
      return true;
    }
    return false;
  }

  /// Call after argument parsing: turns span collection on when a trace
  /// file was requested (spans are free while off).
  void arm() const {
    if (!trace_out.empty()) obs::trace_enable(true);
  }

  /// Write the requested outputs (atomic commit, like every other tool
  /// artifact). Returns false after printing to stderr if a write failed.
  bool emit(const char* tool, const obs::Manifest& manifest) const {
    if (!metrics_out.empty()) {
      const util::Status st =
          util::atomic_write_file(metrics_out, manifest.to_json());
      if (!st.ok()) {
        std::cerr << tool << ": " << st.to_string() << "\n";
        return false;
      }
    }
    if (!trace_out.empty()) {
      const util::Status st =
          util::atomic_write_file(trace_out, obs::render_chrome_trace());
      if (!st.ok()) {
        std::cerr << tool << ": " << st.to_string() << "\n";
        return false;
      }
    }
    return true;
  }
};

inline constexpr const char* kObsUsage =
    "  --metrics-out FILE   write a run manifest + metrics snapshot (JSON)\n"
    "  --trace-out FILE     write a Chrome-trace JSON timeline\n";

}  // namespace bw::tools
