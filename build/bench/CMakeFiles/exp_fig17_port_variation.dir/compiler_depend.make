# Empty compiler generated dependencies file for exp_fig17_port_variation.
# This may be replaced when dependencies are built.
