#include "core/anomaly.hpp"

#include <gtest/gtest.h>

namespace bw::core {
namespace {

flow::FlowRecord rec(util::TimeMs t, net::Ipv4 src, net::Ipv4 dst,
                     net::Proto proto, net::Port dst_port,
                     std::uint32_t packets = 1) {
  flow::FlowRecord r;
  r.time = t;
  r.src_ip = src;
  r.dst_ip = dst;
  r.proto = proto;
  r.dst_port = dst_port;
  r.packets = packets;
  return r;
}

TEST(FeatureMatrixTest, SlotBucketing) {
  const net::Ipv4 dst(10, 0, 0, 1);
  flow::FlowLog flows;
  flows.push_back(rec(0, net::Ipv4(1, 1, 1, 1), dst, net::Proto::kUdp, 80, 3));
  flows.push_back(rec(1000, net::Ipv4(1, 1, 1, 2), dst, net::Proto::kTcp, 80));
  flows.push_back(
      rec(5 * util::kMinute, net::Ipv4(1, 1, 1, 1), dst, net::Proto::kUdp, 81));
  std::vector<std::size_t> idx{0, 1, 2};
  const auto m = compute_features(flows, idx, {0, 10 * util::kMinute});
  ASSERT_EQ(m.slot_count(), 2u);

  const auto& packets = m.series[static_cast<std::size_t>(Feature::kPackets)];
  EXPECT_EQ(packets[0], 4.0);
  EXPECT_EQ(packets[1], 1.0);
  const auto& fl = m.series[static_cast<std::size_t>(Feature::kFlows)];
  EXPECT_EQ(fl[0], 2.0);
  const auto& srcs =
      m.series[static_cast<std::size_t>(Feature::kUniqueSources)];
  EXPECT_EQ(srcs[0], 2.0);
  EXPECT_EQ(srcs[1], 1.0);
  const auto& ports =
      m.series[static_cast<std::size_t>(Feature::kUniqueDstPorts)];
  EXPECT_EQ(ports[0], 1.0);  // both slot-0 records hit port 80
  const auto& nontcp =
      m.series[static_cast<std::size_t>(Feature::kNonTcpFlows)];
  EXPECT_EQ(nontcp[0], 1.0);  // the UDP record; the TCP one doesn't count
  EXPECT_EQ(nontcp[1], 1.0);  // slot 1's only record is UDP
  EXPECT_EQ(m.slots_with_data(), 2u);
}

TEST(FeatureMatrixTest, OutOfRangeRecordsIgnored) {
  const net::Ipv4 dst(10, 0, 0, 1);
  flow::FlowLog flows;
  flows.push_back(rec(-1, net::Ipv4(1, 1, 1, 1), dst, net::Proto::kUdp, 80));
  flows.push_back(rec(10 * util::kMinute, net::Ipv4(1, 1, 1, 1), dst,
                      net::Proto::kUdp, 80));
  std::vector<std::size_t> idx{0, 1};
  const auto m = compute_features(flows, idx, {0, 10 * util::kMinute});
  EXPECT_EQ(m.slots_with_data(), 0u);
}

TEST(FeatureMatrixTest, EmptyRange) {
  flow::FlowLog flows;
  const auto m = compute_features(flows, {}, {100, 100});
  EXPECT_EQ(m.slot_count(), 0u);
}

TEST(AnomalyScanTest, LevelCountsAnomalousFeatures) {
  FeatureMatrix m;
  m.slot = util::kMinute;
  const std::size_t n = 100;
  for (auto& s : m.series) s.assign(n, 1.0);
  // Spike all five features in the last slot.
  for (auto& s : m.series) s[n - 1] = 1000.0;
  const auto scan = detect_anomalies(m, {.window = 20});
  ASSERT_EQ(scan.level.size(), n);
  EXPECT_EQ(scan.level[n - 1], 5);
  EXPECT_EQ(scan.max_level(), 5);
  EXPECT_TRUE(scan.any_anomaly_in_last(1));
}

TEST(AnomalyScanTest, SingleFeatureAnomaly) {
  FeatureMatrix m;
  const std::size_t n = 100;
  for (auto& s : m.series) s.assign(n, 1.0);
  m.series[0][n - 1] = 1000.0;
  const auto scan = detect_anomalies(m, {.window = 20});
  EXPECT_EQ(scan.level[n - 1], 1);
}

TEST(AnomalyScanTest, NoAnomalyBeforeWindowFull) {
  FeatureMatrix m;
  for (auto& s : m.series) s.assign(10, 0.0);
  for (auto& s : m.series) s[5] = 1e9;
  const auto scan = detect_anomalies(m, {.window = 288});
  EXPECT_EQ(scan.max_level(), 0);
}

TEST(AnomalyScanTest, AnyAnomalyInLastWindow) {
  AnomalyScan scan;
  scan.level = {0, 0, 3, 0, 0};
  EXPECT_FALSE(scan.any_anomaly_in_last(2));
  EXPECT_TRUE(scan.any_anomaly_in_last(3));
  EXPECT_TRUE(scan.any_anomaly_in_last(100));
  scan.level.clear();
  EXPECT_FALSE(scan.any_anomaly_in_last(5));
}

TEST(AnomalyTest, FeatureNames) {
  EXPECT_EQ(to_string(Feature::kPackets), "packets");
  EXPECT_EQ(to_string(Feature::kNonTcpFlows), "non-tcp-flows");
}

}  // namespace
}  // namespace bw::core
