// Ablation: the /32 drop rate is a property of the *peer policy mix*, not
// of blackholing itself.
//
// Section 7.1 argues the ~50% /32 drop rate stems from operators never
// whitelisting host routes. Here the same scenario runs under three policy
// worlds: everyone fully configured, the paper-calibrated mix, and a stock
// world where nobody whitelists anything beyond /24.
#include "common.hpp"
#include "core/pipeline.hpp"

namespace {

double rate32(const bw::core::AnalysisReport& report) {
  for (const auto& s : report.drop.by_length) {
    if (s.length == 32) return s.packet_drop_rate();
  }
  return 0.0;
}

}  // namespace

int main() {
  using namespace bw;
  std::cout << "[ablation-policy] regenerating one scenario under three "
               "policy worlds (small scale, uncached)...\n";

  struct World {
    const char* name;
    double accept_all;
    double whitelist;
    double classful;
    double reject;
    double inconsistent;
  };
  const World worlds[] = {
      {"everyone fully configured", 1.00, 0.00, 0.00, 0.00, 0.00},
      {"paper-calibrated mix", 0.12, 0.30, 0.40, 0.05, 0.13},
      {"stock configs only (<= /24)", 0.00, 0.00, 0.95, 0.05, 0.00},
  };

  util::TextTable table({"policy world", "/32 packets dropped",
                         "/24 packets dropped"});
  auto csv = bench::open_csv("ablation_policy_mix",
                             {"world", "drop32", "drop24"});
  for (const World& w : worlds) {
    gen::ScenarioConfig cfg;
    cfg.scale = 0.08;
    cfg.policy_accept_all = w.accept_all;
    cfg.policy_whitelist_host = w.whitelist;
    cfg.policy_classful_only = w.classful;
    cfg.policy_reject_all = w.reject;
    cfg.policy_inconsistent = w.inconsistent;
    const core::ScenarioRun run = core::run_scenario(cfg, std::string{});
    const auto report = core::run_pipeline(run.dataset);
    double r24 = 0.0;
    for (const auto& s : report.drop.by_length) {
      if (s.length == 24) r24 = s.packet_drop_rate();
    }
    table.add_row({w.name, util::fmt_percent(rate32(report), 1),
                   util::fmt_percent(r24, 1)});
    csv->write_row({w.name, util::fmt_double(rate32(report), 4),
                    util::fmt_double(r24, 4)});
  }
  bench::print_header("Ablation", "peer policy mix vs drop rates");
  std::cout << table;
  bench::print_paper_row(
      "reading", "the 50% /32 drop rate is operator configuration,",
      "not a protocol property: full configuration recovers ~100%");
  return 0;
}
