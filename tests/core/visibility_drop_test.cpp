#include <gtest/gtest.h>

#include "core/drop_rate.hpp"
#include "core/visibility.hpp"
#include "corpus.hpp"

namespace bw::core {
namespace {

using testutil::World;

TEST(VisibilityTest, FullDistributionMeansNothingMissed) {
  World world({0, util::kDay}, 0);
  const net::Ipv4 victim(24, 0, 0, 1);
  bgp::UpdateLog control;
  control.push_back(world.platform->service().make_announce(
      0, World::kVictimAsn, 50000, net::Prefix::host(victim)));
  const Dataset dataset = world.run(std::move(control), {});

  const auto report = compute_visibility(dataset,
                                         dataset.period().length() > 0
                                             ? std::vector<bgp::Asn>{200, 300}
                                             : std::vector<bgp::Asn>{},
                                         util::kHour);
  ASSERT_FALSE(report.series.empty());
  for (const auto& p : report.series) {
    EXPECT_EQ(p.missed_median, 0.0);
    EXPECT_EQ(p.missed_max, 0.0);
  }
}

TEST(VisibilityTest, SenderMissesOwnRoutes) {
  World world({0, util::kDay}, 0);
  bgp::UpdateLog control;
  control.push_back(world.platform->service().make_announce(
      0, World::kVictimAsn, 50000,
      net::Prefix::host(net::Ipv4(24, 0, 0, 1))));
  const Dataset dataset = world.run(std::move(control), {});
  const std::vector<bgp::Asn> peers{World::kVictimAsn, 200, 300};
  const auto report = compute_visibility(dataset, peers, util::kHour);
  // The announcing peer does not see its own blackhole: 1 of 1 missed for
  // it, 0 for everyone else -> max = 1, median = 0.
  EXPECT_DOUBLE_EQ(report.overall_missed_max, 1.0);
  EXPECT_DOUBLE_EQ(report.overall_missed_median_peak, 0.0);
}

TEST(VisibilityTest, TargetedAnnouncementCreatesMissedShare) {
  World world({0, util::kDay}, 0);
  bgp::UpdateLog control;
  // Two plain blackholes plus one excluding peer 200.
  control.push_back(world.platform->service().make_announce(
      0, World::kVictimAsn, 50000, net::Prefix::host(net::Ipv4(24, 0, 0, 1))));
  control.push_back(world.platform->service().make_announce(
      0, World::kVictimAsn, 50000, net::Prefix::host(net::Ipv4(24, 0, 0, 2))));
  control.push_back(world.platform->service().make_announce(
      0, World::kVictimAsn, 50000, net::Prefix::host(net::Ipv4(24, 0, 0, 3)),
      {bgp::Community{0, 200}}));
  const Dataset dataset = world.run(std::move(control), {});

  const std::vector<bgp::Asn> peers{200, 300, 400, 500};
  const auto report = compute_visibility(dataset, peers, util::kHour);
  ASSERT_FALSE(report.series.empty());
  const auto& p = report.series[1];
  EXPECT_EQ(p.announced, 3u);
  EXPECT_NEAR(p.missed_max, 1.0 / 3.0, 1e-9);  // peer 200 misses 1 of 3
  EXPECT_DOUBLE_EQ(p.missed_median, 0.0);
}

class DropRateTest : public ::testing::Test {
 protected:
  DropRateTest() : world_({0, util::kDay}, 0) {}

  Dataset make_dataset() {
    const net::Ipv4 v32(24, 0, 0, 1);
    bgp::UpdateLog control;
    // /32 blackhole hours 1-5.
    control.push_back(world_.platform->service().make_announce(
        util::kHour, World::kVictimAsn, 50000, net::Prefix::host(v32)));
    control.push_back(world_.platform->service().make_withdraw(
        5 * util::kHour, World::kVictimAsn, 50000, net::Prefix::host(v32)));
    // /24 blackhole hours 1-5 for a different subnet.
    const auto p24 = *net::Prefix::parse("24.0.1.0/24");
    control.push_back(world_.platform->service().make_announce(
        util::kHour, World::kVictimAsn, 50000, p24));
    control.push_back(world_.platform->service().make_withdraw(
        5 * util::kHour, World::kVictimAsn, 50000, p24));

    std::vector<flow::TrafficBurst> bursts;
    const util::TimeRange active{util::kHour, 5 * util::kHour};
    // /32: 600 packets via acceptor (dropped), 400 via rejector (forwarded).
    bursts.push_back(world_.burst(net::Ipv4(64, 0, 0, 1), v32,
                                  net::Proto::kUdp, 123, 4444, active, 600,
                                  world_.acceptor));
    bursts.push_back(world_.burst(net::Ipv4(64, 1, 0, 1), v32,
                                  net::Proto::kUdp, 123, 4444, active, 400,
                                  world_.rejector));
    // /24: both peers accept (classful-only passes /24): all dropped.
    bursts.push_back(world_.burst(net::Ipv4(64, 1, 0, 2),
                                  net::Ipv4(24, 0, 1, 7), net::Proto::kUdp,
                                  123, 4444, active, 200, world_.rejector));
    return world_.run(std::move(control), bursts);
  }

  World world_;
};

TEST_F(DropRateTest, PerLengthRates) {
  const Dataset dataset = make_dataset();
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  ASSERT_EQ(events.size(), 2u);
  const auto report = compute_drop_rates(dataset, events);

  ASSERT_EQ(report.by_length.size(), 2u);
  const auto& len24 = report.by_length[0];
  const auto& len32 = report.by_length[1];
  EXPECT_EQ(len24.length, 24);
  EXPECT_EQ(len32.length, 32);
  EXPECT_EQ(len32.packets_total, 1000u);
  EXPECT_NEAR(len32.packet_drop_rate(), 0.6, 1e-9);
  EXPECT_EQ(len24.packets_total, 200u);
  EXPECT_NEAR(len24.packet_drop_rate(), 1.0, 1e-9);
  EXPECT_NEAR(report.traffic_share(32), 1000.0 / 1200.0, 1e-9);

  ASSERT_EQ(report.event_rates_len32.size(), 1u);
  EXPECT_NEAR(report.event_rates_len32[0], 0.6, 1e-9);
  ASSERT_EQ(report.event_rates_len24.size(), 1u);
  EXPECT_NEAR(report.event_rates_len24[0], 1.0, 1e-9);
}

TEST_F(DropRateTest, SourceAsAttribution) {
  const Dataset dataset = make_dataset();
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  const auto report = compute_drop_rates(dataset, events);

  ASSERT_EQ(report.sources_to_len32.size(), 2u);
  // Acceptor (600 pkts, all dropped) leads; rejector (400, none dropped).
  EXPECT_EQ(report.sources_to_len32[0].asn, World::kAcceptorAsn);
  EXPECT_NEAR(report.sources_to_len32[0].drop_share(), 1.0, 1e-9);
  EXPECT_EQ(report.sources_to_len32[1].asn, World::kRejectorAsn);
  EXPECT_NEAR(report.sources_to_len32[1].drop_share(), 0.0, 1e-9);

  const auto summary = summarize_top_sources(report, 100);
  EXPECT_EQ(summary.considered, 2u);
  EXPECT_EQ(summary.full_droppers, 1u);
  EXPECT_EQ(summary.full_forwarders, 1u);
  EXPECT_EQ(summary.inconsistent, 0u);
  EXPECT_DOUBLE_EQ(summary.traffic_share_of_total, 1.0);
}

TEST_F(DropRateTest, TypedTopSources) {
  const Dataset dataset = make_dataset();
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  const auto report = compute_drop_rates(dataset, events);

  pdb::Registry registry;
  registry.upsert({.asn = World::kAcceptorAsn, .type = pdb::OrgType::kContent});
  // Rejector intentionally not in PeeringDB -> Unknown.
  const auto rows = type_top_sources(report, registry, 100);
  ASSERT_EQ(rows.size(), 2u);
  std::size_t droppers = 0;
  for (const auto& r : rows) {
    if (r.type == pdb::OrgType::kContent) {
      EXPECT_EQ(r.droppers, 1u);
    }
    if (r.type == pdb::OrgType::kUnknown) {
      EXPECT_EQ(r.others, 1u);
    }
    droppers += r.droppers;
  }
  EXPECT_EQ(droppers, 1u);
}

TEST_F(DropRateTest, MinSamplesGuardsEventRates) {
  const Dataset dataset = make_dataset();
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  DropRateConfig cfg;
  cfg.min_event_samples = 100000;  // nothing qualifies
  const auto report = compute_drop_rates(dataset, events, cfg);
  EXPECT_TRUE(report.event_rates_len32.empty());
  EXPECT_TRUE(report.event_rates_len24.empty());
}

}  // namespace
}  // namespace bw::core
