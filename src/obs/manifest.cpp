#include "obs/manifest.hpp"

#include <sstream>

namespace bw::obs {

namespace {

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Indent every line of a pre-rendered JSON block by two spaces so the
/// embedded metrics snapshot nests cleanly inside the manifest document.
std::string indent_block(const std::string& block) {
  std::string out;
  out.reserve(block.size() + block.size() / 8);
  for (std::size_t i = 0; i < block.size(); ++i) {
    out.push_back(block[i]);
    if (block[i] == '\n' && i + 1 < block.size()) out.append("  ");
  }
  return out;
}

}  // namespace

void Manifest::populate_from_metrics(const MetricsSnapshot& snapshot) {
  metrics = snapshot;
  cache_hits = snapshot.counter("scenario.cache.hit");
  cache_misses = snapshot.counter("scenario.cache.miss");
  cache_quarantined = snapshot.counter("scenario.cache.quarantined");
  cache_save_failures = snapshot.counter("scenario.cache.save_failure");
  fault_retries = snapshot.counter("retry.backoffs");
  rows_loaded = snapshot.counter("ingest.rows_read");
  rows_skipped = snapshot.counter("ingest.rows_skipped");
  rows_repaired = snapshot.counter("ingest.rows_repaired");
  monitor_alerts = snapshot.counter("monitor.alerts");
  monitor_evictions = snapshot.counter("monitor.evictions");
  stream_ingested = snapshot.counter("stream.ingested_bgp") +
                    snapshot.counter("stream.ingested_flow");
  stream_delivered = snapshot.counter("stream.delivered");
  stream_shed = snapshot.counter("stream.shed_total");
  stream_late_dropped = snapshot.counter("stream.late_dropped");
  for (auto& stage : stages) {
    stage.wall_us = snapshot.counter("pipeline.stage." + stage.name + ".wall_us");
    stage.cpu_us = snapshot.counter("pipeline.stage." + stage.name + ".cpu_us");
  }
}

std::string Manifest::to_json() const {
  std::ostringstream os;
  os << "{\n  \"tool\": ";
  append_json_string(os, tool);
  os << ",\n  \"corpus\": ";
  append_json_string(os, corpus);
  os << ",\n  \"scenario_fingerprint\": ";
  append_json_string(os, scenario_fingerprint);
  os << ",\n  \"seed\": ";
  if (has_seed) {
    os << seed;
  } else {
    os << "null";
  }
  os << ",\n  \"threads\": " << threads;
  os << ",\n  \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageTime& st = stages[i];
    os << (i == 0 ? "\n    " : ",\n    ") << "{\"name\": ";
    append_json_string(os, st.name);
    os << ", \"wall_us\": " << st.wall_us << ", \"cpu_us\": " << st.cpu_us
       << ", \"degraded\": " << (st.degraded ? "true" : "false")
       << ", \"timed_out\": " << (st.timed_out ? "true" : "false") << "}";
  }
  os << (stages.empty() ? "]" : "\n  ]");
  os << ",\n  \"cache\": {\"hits\": " << cache_hits
     << ", \"misses\": " << cache_misses
     << ", \"quarantined\": " << cache_quarantined
     << ", \"save_failures\": " << cache_save_failures << "}";
  os << ",\n  \"fault_retries\": " << fault_retries;
  os << ",\n  \"ingest\": {\"rows_loaded\": " << rows_loaded
     << ", \"rows_skipped\": " << rows_skipped
     << ", \"rows_repaired\": " << rows_repaired << "}";
  os << ",\n  \"monitor\": {\"alerts\": " << monitor_alerts
     << ", \"evictions\": " << monitor_evictions << "}";
  os << ",\n  \"stream\": {\"mode\": ";
  append_json_string(os, stream_mode);
  os << ", \"ingested\": " << stream_ingested
     << ", \"delivered\": " << stream_delivered
     << ", \"shed\": " << stream_shed
     << ", \"late_dropped\": " << stream_late_dropped << "}";
  os << ",\n  \"metrics\": " << indent_block(metrics.to_json());
  os << "\n}\n";
  return os.str();
}

}  // namespace bw::obs
