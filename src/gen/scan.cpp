#include "gen/scan.hpp"

namespace bw::gen {

namespace {

// Commonly scanned service ports (telnet/ssh/web/rdp/smb).
constexpr net::Port kScannedPorts[] = {23, 22, 80, 443, 3389, 445, 8080};

}  // namespace

void ScanGenerator::emit(std::span<const net::Ipv4> targets,
                         std::span<const flow::MemberId> ingress,
                         util::TimeRange period,
                         const ixp::Platform::BurstSink& sink) {
  if (ingress.empty() || targets.empty()) return;
  const auto total_days =
      static_cast<int>(period.length() / util::kDay);
  for (const net::Ipv4 target : targets) {
    for (int day = 0; day < total_days; ++day) {
      maybe_emit_burst(target, ingress,
                       period.begin + static_cast<util::TimeMs>(day) * util::kDay,
                       sink);
    }
  }
}

void ScanGenerator::emit_day(std::span<const net::Ipv4> targets,
                             std::span<const flow::MemberId> ingress,
                             util::TimeRange period, int day,
                             const ixp::Platform::BurstSink& sink) {
  if (ingress.empty() || targets.empty()) return;
  const util::TimeMs day_begin =
      period.begin + static_cast<util::TimeMs>(day) * util::kDay;
  for (const net::Ipv4 target : targets) {
    maybe_emit_burst(target, ingress, day_begin, sink);
  }
}

void ScanGenerator::maybe_emit_burst(net::Ipv4 target,
                                     std::span<const flow::MemberId> ingress,
                                     util::TimeMs day_begin,
                                     const ixp::Platform::BurstSink& sink) {
  if (!rng_.chance(cfg_.bursts_per_ip_day)) return;
  flow::TrafficBurst b;
  const util::TimeMs begin = day_begin + util::hours(rng_.uniform(0.0, 24.0));
  b.window = {begin, begin + util::minutes(rng_.uniform(1.0, 30.0))};
  b.src_ip = net::Ipv4(static_cast<std::uint32_t>(
      0xC6000000u | rng_.uniform_int(0, 0x00FFFFFF)));  // 198/8 scanners
  b.dst_ip = target;
  b.proto = rng_.chance(0.8) ? net::Proto::kTcp : net::Proto::kUdp;
  b.src_port = static_cast<net::Port>(rng_.uniform_int(1024, 65535));
  b.dst_port = kScannedPorts[rng_.index(std::size(kScannedPorts))];
  b.packets = std::max<std::int64_t>(
      static_cast<std::int64_t>(
          rng_.lognormal(0.0, 1.0) *
          static_cast<double>(cfg_.packets_per_burst)),
      1);
  b.avg_packet_bytes = 60;
  b.handover = ingress[rng_.index(ingress.size())];
  sink(b);
}

}  // namespace bw::gen
