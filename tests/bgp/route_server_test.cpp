#include "bgp/route_server.hpp"

#include <gtest/gtest.h>

namespace bw::bgp {
namespace {

const net::Prefix kHost = *net::Prefix::parse("10.1.2.3/32");
const net::Ipv4 kAddr = net::Ipv4(10, 1, 2, 3);

Update blackhole_update(util::TimeMs t, UpdateType type, Asn sender,
                        std::vector<Community> extra = {}) {
  Update u;
  u.time = t;
  u.type = type;
  u.sender_asn = sender;
  u.origin_asn = sender;
  u.prefix = kHost;
  u.next_hop = net::Ipv4(10, 66, 6, 6);
  u.communities = std::move(extra);
  u.communities.push_back(kBlackhole);
  return u;
}

class RouteServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rs_.add_peer(100, {.blackhole = BlackholeAcceptance::kAcceptAll});
    rs_.add_peer(200, {.blackhole = BlackholeAcceptance::kClassfulOnly});
    rs_.add_peer(300, {.blackhole = BlackholeAcceptance::kWhitelistHost});
  }
  RouteServer rs_{64600};
};

TEST_F(RouteServerTest, RejectsDuplicatePeer) {
  EXPECT_THROW(rs_.add_peer(100, {}), std::invalid_argument);
}

TEST_F(RouteServerTest, LogsEverything) {
  rs_.process(blackhole_update(10, UpdateType::kAnnounce, 100));
  rs_.process(blackhole_update(20, UpdateType::kWithdraw, 100));
  EXPECT_EQ(rs_.log().size(), 2u);
}

TEST_F(RouteServerTest, PerPeerForwardingDecision) {
  rs_.process(blackhole_update(10, UpdateType::kAnnounce, 100));
  rs_.finalize(1000);
  // Sender never receives its own route back.
  EXPECT_FALSE(rs_.blackholed_for_peer(100, kAddr, 50));
  // /32 rejected by classful-only.
  EXPECT_FALSE(rs_.blackholed_for_peer(200, kAddr, 50));
  // Whitelisted /32 accepted.
  EXPECT_TRUE(rs_.blackholed_for_peer(300, kAddr, 50));
}

TEST_F(RouteServerTest, WithdrawEndsBlackholing) {
  rs_.process(blackhole_update(10, UpdateType::kAnnounce, 100));
  rs_.process(blackhole_update(20, UpdateType::kWithdraw, 100));
  rs_.finalize(1000);
  EXPECT_TRUE(rs_.blackholed_for_peer(300, kAddr, 15));
  EXPECT_FALSE(rs_.blackholed_for_peer(300, kAddr, 25));
}

TEST_F(RouteServerTest, TargetedAnnouncementHonoured) {
  rs_.process(blackhole_update(10, UpdateType::kAnnounce, 100,
                               {Community{0, 300}}));
  rs_.finalize(1000);
  EXPECT_FALSE(rs_.blackholed_for_peer(300, kAddr, 50));  // excluded
}

TEST_F(RouteServerTest, ProcessAllSortsUpdates) {
  UpdateLog log;
  log.push_back(blackhole_update(20, UpdateType::kWithdraw, 100));
  log.push_back(blackhole_update(10, UpdateType::kAnnounce, 100));
  rs_.process_all(std::move(log));
  rs_.finalize(1000);
  EXPECT_TRUE(rs_.blackholed_for_peer(300, kAddr, 15));
  EXPECT_FALSE(rs_.blackholed_for_peer(300, kAddr, 25));
}

TEST_F(RouteServerTest, UnknownPeerThrows) {
  EXPECT_THROW((void)rs_.blackholed_for_peer(999, kAddr, 0),
               std::out_of_range);
  EXPECT_THROW((void)rs_.policy_of(999), std::out_of_range);
}

TEST_F(RouteServerTest, RibsNotMaterialisedByDefault) {
  EXPECT_THROW((void)rs_.rib(100), std::logic_error);
}

TEST_F(RouteServerTest, PeerAsnsListed) {
  const auto asns = rs_.peer_asns();
  EXPECT_EQ(asns.size(), 3u);
  EXPECT_EQ(rs_.peer_count(), 3u);
}

TEST(RouteServerMaterializedTest, RibDecisionsMatchIndexDecisions) {
  // The materialised per-peer RIB path and the stateless index path must
  // agree — this is the equivalence the fast path relies on.
  RouteServer with_ribs(64600, /*materialize_ribs=*/true);
  RouteServer without(64600, /*materialize_ribs=*/false);
  for (RouteServer* rs : {&with_ribs, &without}) {
    rs->add_peer(100, {.blackhole = BlackholeAcceptance::kAcceptAll});
    rs->add_peer(200, {.blackhole = BlackholeAcceptance::kClassfulOnly});
    rs->add_peer(300, {.blackhole = BlackholeAcceptance::kWhitelistHost,
                       .salt = 7});
  }
  UpdateLog log;
  log.push_back(blackhole_update(10, UpdateType::kAnnounce, 100));
  log.push_back(blackhole_update(500, UpdateType::kWithdraw, 100));
  log.push_back(blackhole_update(900, UpdateType::kAnnounce, 200));
  for (RouteServer* rs : {&with_ribs, &without}) {
    rs->process_all(log);
    rs->finalize(2000);
  }
  for (const Asn peer : {100u, 200u, 300u}) {
    for (const util::TimeMs t : {0, 50, 600, 950, 1999}) {
      EXPECT_EQ(with_ribs.rib(peer).blackholed(kAddr, t),
                without.blackholed_for_peer(peer, kAddr, t))
          << "peer " << peer << " t " << t;
    }
  }
}

}  // namespace
}  // namespace bw::bgp
