file(REMOVE_RECURSE
  "libbw_net.a"
)
