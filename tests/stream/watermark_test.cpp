#include "stream/watermark.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bw::stream {
namespace {

StreamEvent bgp_event(util::TimeMs t, std::uint64_t seq) {
  bgp::Update u;
  u.time = t;
  return StreamEvent::from(u, seq);
}

StreamEvent flow_event(util::TimeMs t, std::uint64_t seq) {
  flow::FlowRecord r;
  r.time = t;
  return StreamEvent::from(r, seq);
}

struct Collector {
  std::vector<StreamEvent> out;
  void operator()(const StreamEvent& ev) { out.push_back(ev); }
};

TEST(StreamEventTest, DeliveryOrderIsTimeKindSeq) {
  // BGP before flow at equal times; FIFO seq breaks the final tie.
  EXPECT_TRUE(bgp_event(100, 0).before(flow_event(100, 0)));
  EXPECT_FALSE(flow_event(100, 0).before(bgp_event(100, 9)));
  EXPECT_TRUE(flow_event(99, 5).before(bgp_event(100, 0)));
  EXPECT_TRUE(flow_event(100, 1).before(flow_event(100, 2)));
}

TEST(WatermarkMuxTest, MergesTwoFeedsInEventTimeOrder) {
  FeedRing bgp_feed(16, 0);
  FeedRing flow_feed(16, 0);
  WatermarkMux mux({&bgp_feed, &flow_feed}, 1024);

  // Interleaved times, including an equal-time pair (t=30) where the BGP
  // update must come out first — the batch merge tie-break.
  for (util::TimeMs t : {10, 30, 50}) {
    bgp_feed.advance_watermark(t);
    ASSERT_TRUE(bgp_feed.ring.try_push(bgp_event(t, static_cast<std::uint64_t>(t))));
  }
  for (util::TimeMs t : {20, 30, 40}) {
    flow_feed.advance_watermark(t);
    ASSERT_TRUE(flow_feed.ring.try_push(flow_event(t, static_cast<std::uint64_t>(t))));
  }
  bgp_feed.close();
  flow_feed.close();

  Collector got;
  while (!mux.exhausted()) {
    mux.drain_feeds(64);
    mux.release_ready(got);
  }
  ASSERT_EQ(got.out.size(), 6u);
  const std::vector<std::pair<util::TimeMs, EventKind>> expected = {
      {10, EventKind::kBgpUpdate}, {20, EventKind::kFlow},
      {30, EventKind::kBgpUpdate}, {30, EventKind::kFlow},
      {40, EventKind::kFlow},      {50, EventKind::kBgpUpdate},
  };
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got.out[i].time, expected[i].first) << i;
    EXPECT_EQ(got.out[i].kind, expected[i].second) << i;
  }
  EXPECT_EQ(mux.stats().released, 6u);
  EXPECT_EQ(mux.stats().late_dropped, 0u);
}

TEST(WatermarkMuxTest, HoldsEventsUntilBothFeedsPassThem) {
  FeedRing a(16, 0);
  FeedRing b(16, 0);
  WatermarkMux mux({&a, &b}, 1024);

  // Feed a has progressed to t=100; feed b has said nothing yet. Nothing
  // may be released: b could still produce arbitrarily early events.
  a.advance_watermark(100);
  ASSERT_TRUE(a.ring.try_push(bgp_event(100, 0)));
  mux.drain_feeds(64);
  Collector got;
  EXPECT_EQ(mux.release_ready(got), 0u);

  // Both feeds progress past 100: a's event becomes releasable (release is
  // strict, so a's own watermark sitting exactly at 100 still holds it).
  b.advance_watermark(250);
  ASSERT_TRUE(b.ring.try_push(flow_event(250, 0)));
  a.advance_watermark(150);
  mux.drain_feeds(64);
  mux.release_ready(got);
  ASSERT_EQ(got.out.size(), 1u);
  EXPECT_EQ(got.out[0].time, 100);
}

TEST(WatermarkMuxTest, AllowanceAdmitsBoundedDisorder) {
  // One feed with allowance 10: events may arrive up to 10ms out of order
  // and must still be released in time order.
  FeedRing a(16, 10);
  WatermarkMux mux({&a}, 1024);
  const util::TimeMs times[] = {100, 95, 105, 98, 110, 120};
  std::uint64_t seq = 0;
  Collector got;
  for (util::TimeMs t : times) {
    a.advance_watermark(t);
    ASSERT_TRUE(a.ring.try_push(flow_event(t, seq++)));
    mux.drain_feeds(64);
    mux.release_ready(got);
  }
  a.close();
  while (!mux.exhausted()) {
    mux.drain_feeds(64);
    mux.release_ready(got);
  }
  ASSERT_EQ(got.out.size(), 6u);
  EXPECT_EQ(mux.stats().late_dropped, 0u);
  for (std::size_t i = 1; i < got.out.size(); ++i) {
    EXPECT_LE(got.out[i - 1].time, got.out[i].time) << i;
  }
}

TEST(WatermarkMuxTest, EventBehindTheAllowanceIsCountedAndDropped) {
  FeedRing a(16, 5);
  FeedRing b(16, 5);
  WatermarkMux mux({&a, &b}, 1024);
  Collector got;

  // Both feeds progress well past t=100 and events release...
  for (util::TimeMs t : {100, 200}) {
    a.advance_watermark(t);
    ASSERT_TRUE(a.ring.try_push(flow_event(t, static_cast<std::uint64_t>(t))));
    b.advance_watermark(t);
    ASSERT_TRUE(b.ring.try_push(bgp_event(t, static_cast<std::uint64_t>(t))));
    mux.drain_feeds(64);
    mux.release_ready(got);
  }
  const std::uint64_t released_before = mux.stats().released;
  EXPECT_GT(released_before, 0u);

  // ...then feed a violates its promise by far more than the allowance.
  // Emitting t=50 now would hand the consumer time travel: count + drop.
  ASSERT_TRUE(a.ring.try_push(flow_event(50, 99)));
  mux.drain_feeds(64);
  mux.release_ready(got);
  EXPECT_EQ(mux.stats().late_dropped, 1u);
  for (const auto& ev : got.out) EXPECT_NE(ev.seq, 99u);
}

TEST(WatermarkMuxTest, PublishedWatermarkMustNotOvertakeRingBacklog) {
  // Feed a: events t=10..13 pushed (watermark 13) but NOT yet drained.
  // Feed b: event t=12 drained into the heap. If the mux trusted the
  // published watermark alone, it would release b@12 ahead of a's buffered
  // 10 and 11 — the in-band clamp must prevent that.
  FeedRing a(16, 0);
  FeedRing b(16, 0);
  WatermarkMux mux({&a, &b}, 1024);
  for (util::TimeMs t : {10, 11, 12, 13}) {
    a.advance_watermark(t);
    ASSERT_TRUE(a.ring.try_push(flow_event(t, static_cast<std::uint64_t>(t))));
  }
  b.advance_watermark(12);
  ASSERT_TRUE(b.ring.try_push(bgp_event(12, 0)));

  // Drain only from b (budget 1 pops the gating pick; a gates with its
  // front at t=10, so give the mux no chance to pop a at all by checking
  // the threshold directly).
  EXPECT_LE(mux.release_threshold(), 10)
      << "threshold must clamp to a's oldest undrained event";

  Collector got;
  a.close();
  b.close();
  while (!mux.exhausted()) {
    mux.drain_feeds(64);
    mux.release_ready(got);
  }
  ASSERT_EQ(got.out.size(), 5u);
  for (std::size_t i = 1; i < got.out.size(); ++i) {
    EXPECT_FALSE(got.out[i].before(got.out[i - 1])) << i;
  }
  EXPECT_EQ(mux.stats().late_dropped, 0u);
}

TEST(WatermarkMuxTest, HeapCapStopsDrainingRacingFeeds) {
  // Feed a is open but silent (dead producer); feed b races ahead. At the
  // heap cap the mux must stop popping b — b's backlog belongs in its ring
  // (backpressure), not in an unbounded heap.
  FeedRing a(8, 0);
  FeedRing b(64, 0);
  WatermarkMux mux({&a, &b}, 4);
  for (util::TimeMs t = 0; t < 32; ++t) {
    b.advance_watermark(t);
    ASSERT_TRUE(b.ring.try_push(flow_event(t, static_cast<std::uint64_t>(t))));
  }
  const std::size_t popped = mux.drain_feeds(1000);
  EXPECT_EQ(popped, 4u) << "drain must stop at the heap cap";
  EXPECT_EQ(b.ring.size(), 28u);

  // Once feed a closes, the backlog drains and releases in order.
  a.close();
  b.close();
  Collector got;
  while (!mux.exhausted()) {
    mux.drain_feeds(64);
    mux.release_ready(got);
  }
  EXPECT_EQ(got.out.size(), 32u);
  EXPECT_EQ(mux.stats().forced_releases, 0u);
}

TEST(WatermarkMuxTest, ClosedAndDrainedFeedStopsGating) {
  FeedRing a(16, 0);
  FeedRing b(16, 0);
  WatermarkMux mux({&a, &b}, 1024);
  a.advance_watermark(10);
  ASSERT_TRUE(a.ring.try_push(bgp_event(10, 0)));
  a.close();

  b.advance_watermark(500);
  ASSERT_TRUE(b.ring.try_push(flow_event(500, 0)));

  Collector got;
  mux.drain_feeds(64);
  mux.release_ready(got);
  // a is closed and drained: only b's own watermark gates, so a's event
  // (and nothing else) is releasable.
  ASSERT_EQ(got.out.size(), 1u);
  EXPECT_EQ(got.out[0].time, 10);
}

}  // namespace
}  // namespace bw::stream
