// RFC 4271 wire-format encoding/decoding of BGP UPDATE messages (with the
// RFC 1997 COMMUNITIES attribute), so synthetic control-plane traces can be
// exported to — and replayed from — the byte format real collectors speak.
//
// Supported subset (all this study needs):
//   header         16-byte marker, length, type (UPDATE = 2)
//   withdrawn      prefix list
//   path attrs     ORIGIN, AS_PATH (one AS_SEQUENCE, 4-byte ASNs via
//                  AS4_PATH-style encoding), NEXT_HOP, COMMUNITIES
//   NLRI           prefix list
//
// Timestamps are not part of the BGP wire format; like MRT, the framed
// stream encoder prepends an 8-byte milliseconds timestamp per message.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/message.hpp"

namespace bw::bgp::wire {

/// Encode one update as a BGP UPDATE message (no timestamp).
[[nodiscard]] std::vector<std::uint8_t> encode_update(const Update& update);

/// Decode one BGP UPDATE message. Returns nullopt on malformed input.
/// The decoded Update carries time = 0 (the wire format has none).
[[nodiscard]] std::optional<Update> decode_update(
    std::span<const std::uint8_t> bytes);

/// Encode a whole log as a framed stream: per message an 8-byte big-endian
/// millisecond timestamp, then the UPDATE bytes.
[[nodiscard]] std::vector<std::uint8_t> encode_stream(const UpdateLog& log);

/// Decode a framed stream; returns nullopt if any frame is malformed.
[[nodiscard]] std::optional<UpdateLog> decode_stream(
    std::span<const std::uint8_t> bytes);

/// BGP message size ceiling (RFC 4271): 4096 octets.
inline constexpr std::size_t kMaxMessageSize = 4096;

}  // namespace bw::bgp::wire
