// Operator behaviour models: who announces RTBHs, when, and how.
//
// Encodes the operational practices the paper catalogues:
//  * DDoS mitigation: automatic triggering seconds-to-minutes after attack
//    detection, then repeated announce/withdraw cycles to probe whether the
//    attack is still ongoing (Fig. 9) — blackholed victims are blind.
//  * Long-lived blackholes: prefix-squatting protection (months, <= /24),
//    content blocking (weeks-months, /32), and forgotten "RTBH zombies"
//    (announced once, never withdrawn — Section 7.3).
//  * Targeted announcements: almost never used; temporarily elevated in
//    early October at the paper's vantage point (Fig. 4).
#pragma once

#include <vector>

#include "bgp/message.hpp"
#include "ixp/blackhole_service.hpp"
#include "util/rng.hpp"

namespace bw::gen {

struct MitigationBehavior {
  /// Reaction latency between detection and first announcement (lognormal,
  /// in seconds). Defaults give a ~90 s median, matching the automatic
  /// triggering the paper infers from Fig. 12.
  double latency_log_mean{4.5};
  double latency_log_sd{0.9};
  /// Mean number of announce cycles per mitigation (Fig. 9 on/off probing).
  double mean_cycles{22.0};
  /// Hold time per announce (lognormal, seconds; median ~8 min).
  double hold_log_mean{6.2};
  double hold_log_sd{0.8};
  /// Gap between withdraw and re-announce (lognormal, seconds; median
  /// ~90 s — the Fig. 10 merge-threshold knee lives here).
  double gap_log_mean{4.5};
  double gap_log_sd{0.8};
  /// Probability that a gap is a long pause (minutes-hours) splitting the
  /// mitigation into what Δ-merging counts as separate events.
  double long_gap_probability{0.008};
};

class OperatorModel {
 public:
  OperatorModel(const ixp::BlackholeService& service, util::Rng rng)
      : service_(&service), rng_(rng) {}

  struct Mitigation {
    bgp::UpdateLog updates;
    util::TimeRange span;           ///< first announce .. last withdraw
    std::size_t announcements{0};
  };

  /// RTBH updates for one DDoS mitigation: reaction latency, then on/off
  /// announce cycles roughly covering `attack_duration` (never beyond
  /// `not_after`). `extra_communities` carries targeted-announcement
  /// actions when the (rare) operator uses them.
  [[nodiscard]] Mitigation mitigate(
      const net::Prefix& prefix, bgp::Asn sender, bgp::Asn origin,
      util::TimeMs detection_time, util::DurationMs attack_duration,
      util::TimeMs not_after, const MitigationBehavior& behavior,
      std::vector<bgp::Community> extra_communities = {});

  /// A long-lived blackhole: single announcement at `span.begin`; withdrawn
  /// at `span.end` only when `withdraw` is true (zombies never withdraw).
  [[nodiscard]] bgp::UpdateLog long_lived(const net::Prefix& prefix,
                                          bgp::Asn sender, bgp::Asn origin,
                                          util::TimeRange span, bool withdraw);

 private:
  const ixp::BlackholeService* service_;
  util::Rng rng_;
};

}  // namespace bw::gen
