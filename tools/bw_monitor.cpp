// bw-monitor: replay a .bwds corpus chronologically through the online
// RTBH monitor and print every alert — what an operator tap on the route
// server + IPFIX feed would produce in real time.
//
//   bw-monitor corpus.bwds [--kinds attack,zombie,lowdrop] [--quiet]
//              [--metrics-out FILE] [--trace-out FILE]
//
// Exit codes: 0 ok, 2 usage, 3 data error, 4 internal (see tools/cli.hpp).
#include <iostream>
#include <sstream>
#include <map>
#include <string>
#include <unordered_set>

#include "cli.hpp"
#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace {

void usage() {
  std::cerr << "usage: bw-monitor FILE.bwds [--kinds LIST] [--quiet]\n"
               "                 [--metrics-out FILE] [--trace-out FILE]\n"
               "  LIST: comma-separated of start,end,attack,lowdrop,zombie\n"
               "  --quiet: summary only\n"
            << bw::tools::kObsUsage;
}

std::optional<bw::core::AlertKind> kind_from(const std::string& name) {
  using bw::core::AlertKind;
  if (name == "start") return AlertKind::kEventStarted;
  if (name == "end") return AlertKind::kEventEnded;
  if (name == "attack") return AlertKind::kAttackCorrelated;
  if (name == "lowdrop") return AlertKind::kLowDropRate;
  if (name == "zombie") return AlertKind::kZombieSuspect;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bw;
  std::string path;
  bool quiet = false;
  tools::ObsOptions obs_options;
  std::unordered_set<core::AlertKind> kinds{core::AlertKind::kAttackCorrelated,
                                            core::AlertKind::kLowDropRate,
                                            core::AlertKind::kZombieSuspect};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (obs_options.parse(argc, argv, i)) {
      continue;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--kinds" && i + 1 < argc) {
      kinds.clear();
      std::istringstream list(argv[++i]);
      std::string name;
      while (std::getline(list, name, ',')) {
        const auto kind = kind_from(name);
        if (!kind) {
          std::cerr << "bw-monitor: unknown alert kind: " << name << "\n";
          usage();
          return tools::kExitUsage;
        }
        kinds.insert(*kind);
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return tools::kExitOk;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "bw-monitor: unknown argument: " << arg << "\n";
      usage();
      return tools::kExitUsage;
    }
  }
  if (path.empty()) {
    usage();
    return tools::kExitUsage;
  }
  obs_options.arm();

  try {
    std::cout << "Loading " << path << "...\n";
    auto loaded = core::Dataset::try_load(path);
    if (!loaded.ok()) {
      std::cerr << "bw-monitor: " << loaded.status().to_string() << "\n";
      return tools::kExitData;
    }
    const core::Dataset& dataset = loaded.value();

    std::map<core::AlertKind, std::size_t> counts;
    core::RtbhMonitor monitor({}, [&](const core::Alert& alert) {
      ++counts[alert.kind];
      if (!quiet && kinds.contains(alert.kind)) {
        std::cout << "[" << util::format_time(alert.time) << "] "
                  << core::to_string(alert.kind) << ": " << alert.message
                  << "\n";
      }
    });

    {
      const obs::TraceSpan replay_span("monitor.replay", "monitor");
      const auto& updates = dataset.blackhole_updates();
      const auto& flows = dataset.flows();
      std::size_t ui = 0;
      std::size_t fi = 0;
      while (ui < updates.size() || fi < flows.size()) {
        const bool take_update =
            fi >= flows.size() ||
            (ui < updates.size() && updates[ui].time <= flows[fi].time);
        if (take_update) monitor.on_update(updates[ui++]);
        else monitor.on_flow(flows[fi++]);
      }
      monitor.finish(dataset.period().end);
    }

    util::TextTable table({"signal", "count"});
    for (const auto& [kind, n] : counts) {
      table.add_row({std::string(core::to_string(kind)),
                     util::fmt_count(static_cast<std::int64_t>(n))});
    }
    std::cout << "\n" << table << "Events observed: " << monitor.total_events()
              << "\n";

    obs::Manifest manifest;
    manifest.tool = "bw-monitor";
    manifest.corpus = path;
    manifest.threads = util::ThreadPool::configured_concurrency();
    manifest.populate_from_metrics(obs::Registry::global().snapshot());
    if (!obs_options.emit("bw-monitor", manifest)) return tools::kExitData;

    return tools::kExitOk;
  } catch (const std::exception& e) {
    std::cerr << "bw-monitor: internal error: " << e.what() << "\n";
    return tools::kExitInternal;
  }
}
