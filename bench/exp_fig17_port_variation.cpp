// Figure 17: top-port variation vs days with traffic, and the resulting
// client/server classification (Section 6.2).
//
// Paper: port variation ~1 resembles clients (different top port almost
// every day), ~0 resembles stable servers; with the >= 20-day criterion
// the paper finds over 4,000 clients and 1,000 stable servers.
#include "common.hpp"
#include "util/histogram.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig17");
  const auto& ports = exp.report.ports;

  bench::print_header("Fig. 17", "top-port variation and classification");
  auto csv = bench::open_csv(
      "fig17_port_variation",
      {"ip", "days_with_inbound", "port_variation", "classification"});
  // Variation histogram for eligible hosts.
  util::Histogram hist(0.0, 1.0 + 1e-9, 10);
  for (const auto& h : ports.hosts) {
    csv->write_row({h.ip.to_string(), std::to_string(h.days_with_inbound),
                    util::fmt_double(h.port_variation, 3),
                    std::string(core::to_string(h.classification))});
    if (h.classification != core::HostClass::kUnclassified) {
      hist.add(h.port_variation);
    }
  }
  util::TextTable table({"port variation", "eligible hosts"});
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    table.add_row(
        {util::fmt_double(hist.bin_lo(b), 1) + "-" +
             util::fmt_double(std::min(hist.bin_hi(b), 1.0), 1),
         util::fmt_count(static_cast<std::int64_t>(hist.count(b)))});
  }
  std::cout << table;

  const double scale = exp.config.scale;
  bench::print_paper_row(
      "detected clients", "4,057 (x scale = " +
          util::fmt_double(4057 * scale, 0) + ")",
      util::fmt_count(static_cast<std::int64_t>(ports.clients)));
  bench::print_paper_row(
      "detected stable servers", "1,036 (x scale = " +
          util::fmt_double(1036 * scale, 0) + ")",
      util::fmt_count(static_cast<std::int64_t>(ports.servers)));
  bench::print_paper_row(
      "blackholed hosts meeting the 20-day criterion", "30%",
      util::fmt_percent(
          ports.blackholed_hosts_total > 0
              ? static_cast<double>(ports.eligible_hosts) /
                    static_cast<double>(ports.blackholed_hosts_total)
              : 0.0,
          0));
  return 0;
}
