#include "flow/record.hpp"

#include <algorithm>
#include <utility>

namespace bw::flow {

namespace {

bool time_less(const FlowRecord& a, const FlowRecord& b) {
  return a.time < b.time;
}

}  // namespace

void sort_flows(FlowLog& flows) {
  std::stable_sort(flows.begin(), flows.end(), time_less);
}

FlowLog merge_sorted_flows(std::vector<FlowLog> parts) {
  std::erase_if(parts, [](const FlowLog& p) { return p.empty(); });
  if (parts.empty()) return {};
  // Tree of pairwise std::inplace_merge passes. Each pass merges part 2k
  // into part 2k+1's predecessor, left-before-right on ties, so the overall
  // order equals a stable sort of the in-order concatenation.
  while (parts.size() > 1) {
    std::vector<FlowLog> next;
    next.reserve((parts.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < parts.size(); i += 2) {
      FlowLog& a = parts[i];
      FlowLog& b = parts[i + 1];
      const auto mid = static_cast<FlowLog::difference_type>(a.size());
      a.insert(a.end(), std::make_move_iterator(b.begin()),
               std::make_move_iterator(b.end()));
      std::inplace_merge(a.begin(), a.begin() + mid, a.end(), time_less);
      next.push_back(std::move(a));
    }
    if (parts.size() % 2 == 1) next.push_back(std::move(parts.back()));
    parts = std::move(next);
  }
  return std::move(parts.front());
}

}  // namespace bw::flow
