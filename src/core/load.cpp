#include "core/load.hpp"

#include <algorithm>
#include <unordered_set>

namespace bw::core {

RtbhLoadReport compute_load(const Dataset& dataset, util::DurationMs slot) {
  RtbhLoadReport report;
  report.slot = std::max<util::DurationMs>(slot, 1);
  const util::TimeRange period = dataset.period();
  const auto slots = static_cast<std::size_t>(
      (period.length() + report.slot - 1) / report.slot);
  if (slots == 0) return report;

  // Active-prefix counting via +1/-1 boundary diffs over the spans.
  std::vector<std::int64_t> active_diff(slots + 1, 0);
  dataset.rs_index().for_each(
      [&](const net::Prefix&, const std::vector<bgp::BlackholeIndex::Span>& spans) {
        for (const auto& s : spans) {
          const auto b = static_cast<std::size_t>(std::clamp<std::int64_t>(
              util::slot_index(s.range.begin - period.begin, report.slot), 0,
              static_cast<std::int64_t>(slots)));
          const auto e = static_cast<std::size_t>(std::clamp<std::int64_t>(
              util::slot_index(s.range.end - period.begin, report.slot) + 1, 0,
              static_cast<std::int64_t>(slots)));
          if (e <= b) continue;
          active_diff[b] += 1;
          active_diff[e] -= 1;
        }
      });

  std::vector<std::size_t> messages(slots, 0);
  std::unordered_set<bgp::Asn> peers;
  std::unordered_set<bgp::Asn> origins;
  for (const auto& u : dataset.blackhole_updates()) {
    const std::int64_t s = util::slot_index(u.time - period.begin, report.slot);
    if (s >= 0 && s < static_cast<std::int64_t>(slots)) {
      ++messages[static_cast<std::size_t>(s)];
    }
    peers.insert(u.sender_asn);
    origins.insert(u.origin_asn);
  }
  report.announcing_peers = peers.size();
  report.origin_ases = origins.size();

  report.series.reserve(slots);
  std::int64_t active = 0;
  double sum_active = 0.0;
  for (std::size_t s = 0; s < slots; ++s) {
    active += active_diff[s];
    RtbhLoadPoint p;
    p.time = period.begin + static_cast<util::TimeMs>(s) * report.slot;
    p.active_prefixes = static_cast<std::size_t>(std::max<std::int64_t>(active, 0));
    p.messages = messages[s];
    report.series.push_back(p);
    sum_active += static_cast<double>(p.active_prefixes);
    report.max_active = std::max(report.max_active, p.active_prefixes);
    report.max_messages_per_slot =
        std::max(report.max_messages_per_slot, p.messages);
  }
  report.mean_active = sum_active / static_cast<double>(slots);
  return report;
}

}  // namespace bw::core
