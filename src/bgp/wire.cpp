#include "bgp/wire.hpp"

#include <cstring>

namespace bw::bgp::wire {

namespace {

constexpr std::uint8_t kTypeUpdate = 2;
constexpr std::size_t kHeaderSize = 19;

// Attribute type codes (RFC 4271 / RFC 1997).
constexpr std::uint8_t kAttrOrigin = 1;
constexpr std::uint8_t kAttrAsPath = 2;
constexpr std::uint8_t kAttrNextHop = 3;
constexpr std::uint8_t kAttrCommunities = 8;

constexpr std::uint8_t kFlagsWellKnown = 0x40;
constexpr std::uint8_t kFlagsOptionalTransitive = 0xC0;

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

/// Prefix in RFC 4271 NLRI encoding: length byte + minimal octets.
void put_prefix(std::vector<std::uint8_t>& out, const net::Prefix& p) {
  put_u8(out, p.length());
  const std::uint32_t bits = p.network().value();
  const int octets = (p.length() + 7) / 8;
  for (int i = 0; i < octets; ++i) {
    put_u8(out, static_cast<std::uint8_t>(bits >> (24 - 8 * i)));
  }
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return ok_ ? bytes_.size() - pos_ : 0;
  }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return bytes_[pos_++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        (bytes_[pos_] << 8) | bytes_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | bytes_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }

  std::optional<net::Prefix> prefix() {
    const std::uint8_t len = u8();
    if (!ok_ || len > 32) {
      ok_ = false;
      return std::nullopt;
    }
    const int octets = (len + 7) / 8;
    if (!need(static_cast<std::size_t>(octets))) return std::nullopt;
    std::uint32_t bits = 0;
    for (int i = 0; i < octets; ++i) {
      bits |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
              << (24 - 8 * i);
    }
    pos_ += static_cast<std::size_t>(octets);
    return net::Prefix(net::Ipv4(bits), len);
  }

  void skip(std::size_t n) {
    if (need(n)) pos_ += n;
  }

 private:
  bool need(std::size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_{0};
  bool ok_{true};
};

std::vector<std::uint8_t> encode_attributes(const Update& u) {
  std::vector<std::uint8_t> attrs;
  // ORIGIN: IGP.
  put_u8(attrs, kFlagsWellKnown);
  put_u8(attrs, kAttrOrigin);
  put_u8(attrs, 1);
  put_u8(attrs, 0);
  // AS_PATH: one AS_SEQUENCE with 4-byte ASNs: sender then origin.
  std::vector<Asn> path{u.sender_asn};
  if (u.origin_asn != u.sender_asn) path.push_back(u.origin_asn);
  put_u8(attrs, kFlagsWellKnown);
  put_u8(attrs, kAttrAsPath);
  put_u8(attrs, static_cast<std::uint8_t>(2 + 4 * path.size()));
  put_u8(attrs, 2);  // AS_SEQUENCE
  put_u8(attrs, static_cast<std::uint8_t>(path.size()));
  for (const Asn a : path) put_u32(attrs, a);
  // NEXT_HOP.
  put_u8(attrs, kFlagsWellKnown);
  put_u8(attrs, kAttrNextHop);
  put_u8(attrs, 4);
  put_u32(attrs, u.next_hop.value());
  // COMMUNITIES.
  if (!u.communities.empty()) {
    put_u8(attrs, kFlagsOptionalTransitive);
    put_u8(attrs, kAttrCommunities);
    put_u8(attrs, static_cast<std::uint8_t>(4 * u.communities.size()));
    for (const Community& c : u.communities) {
      put_u16(attrs, c.global);
      put_u16(attrs, c.local);
    }
  }
  return attrs;
}

}  // namespace

std::vector<std::uint8_t> encode_update(const Update& update) {
  std::vector<std::uint8_t> body;

  // Withdrawn routes.
  std::vector<std::uint8_t> withdrawn;
  if (update.type == UpdateType::kWithdraw) {
    put_prefix(withdrawn, update.prefix);
  }
  put_u16(body, static_cast<std::uint16_t>(withdrawn.size()));
  body.insert(body.end(), withdrawn.begin(), withdrawn.end());

  // Path attributes. Note: we also attach attributes to withdrawals so the
  // framed stream round-trips sender/origin/communities — a documented
  // deviation from minimal RFC 4271 withdraws, which carry none.
  const auto attrs = encode_attributes(update);
  put_u16(body, static_cast<std::uint16_t>(attrs.size()));
  body.insert(body.end(), attrs.begin(), attrs.end());

  // NLRI.
  if (update.type == UpdateType::kAnnounce) {
    put_prefix(body, update.prefix);
  }

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + body.size());
  for (int i = 0; i < 16; ++i) put_u8(out, 0xFF);
  put_u16(out, static_cast<std::uint16_t>(kHeaderSize + body.size()));
  put_u8(out, kTypeUpdate);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<Update> decode_update(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize || bytes.size() > kMaxMessageSize) {
    return std::nullopt;
  }
  for (int i = 0; i < 16; ++i) {
    if (bytes[static_cast<std::size_t>(i)] != 0xFF) return std::nullopt;
  }
  Reader r(bytes.subspan(16));
  const std::uint16_t length = r.u16();
  if (length != bytes.size()) return std::nullopt;
  if (r.u8() != kTypeUpdate) return std::nullopt;

  Update u;

  // Withdrawn routes.
  const std::uint16_t withdrawn_len = r.u16();
  std::size_t consumed = 0;
  std::optional<net::Prefix> withdrawn_prefix;
  while (consumed < withdrawn_len) {
    const std::size_t before = r.remaining();
    const auto p = r.prefix();
    if (!p || !r.ok()) return std::nullopt;
    withdrawn_prefix = p;
    consumed += before - r.remaining();
  }

  // Path attributes.
  const std::uint16_t attr_len = r.u16();
  std::size_t attr_consumed = 0;
  while (attr_consumed < attr_len) {
    const std::size_t before = r.remaining();
    const std::uint8_t flags = r.u8();
    const std::uint8_t type = r.u8();
    const std::uint16_t len =
        (flags & 0x10) != 0 ? r.u16() : r.u8();  // extended length bit
    if (!r.ok()) return std::nullopt;
    switch (type) {
      case kAttrAsPath: {
        if (len < 2) return std::nullopt;
        r.u8();  // segment type
        const std::uint8_t count = r.u8();
        if (len != 2 + 4 * static_cast<std::uint16_t>(count)) {
          return std::nullopt;
        }
        for (std::uint8_t i = 0; i < count; ++i) {
          const Asn asn = r.u32();
          if (i == 0) u.sender_asn = asn;
          u.origin_asn = asn;  // last AS in the sequence
        }
        break;
      }
      case kAttrNextHop: {
        if (len != 4) return std::nullopt;
        u.next_hop = net::Ipv4(r.u32());
        break;
      }
      case kAttrCommunities: {
        if (len % 4 != 0) return std::nullopt;
        for (std::uint16_t i = 0; i < len / 4; ++i) {
          Community c;
          c.global = r.u16();
          c.local = r.u16();
          u.communities.push_back(c);
        }
        break;
      }
      default:
        r.skip(len);
        break;
    }
    if (!r.ok()) return std::nullopt;
    attr_consumed += before - r.remaining();
  }
  if (attr_consumed != attr_len) return std::nullopt;

  // NLRI.
  if (r.remaining() > 0) {
    const auto p = r.prefix();
    if (!p || !r.ok() || r.remaining() != 0) return std::nullopt;
    u.type = UpdateType::kAnnounce;
    u.prefix = *p;
  } else if (withdrawn_prefix) {
    u.type = UpdateType::kWithdraw;
    u.prefix = *withdrawn_prefix;
  } else {
    return std::nullopt;  // neither announce nor withdraw
  }
  return u;
}

std::vector<std::uint8_t> encode_stream(const UpdateLog& log) {
  std::vector<std::uint8_t> out;
  for (const Update& u : log) {
    put_u64(out, static_cast<std::uint64_t>(u.time));
    const auto msg = encode_update(u);
    out.insert(out.end(), msg.begin(), msg.end());
  }
  return out;
}

std::optional<UpdateLog> decode_stream(std::span<const std::uint8_t> bytes) {
  UpdateLog log;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8 + kHeaderSize) return std::nullopt;
    std::uint64_t ts = 0;
    for (int i = 0; i < 8; ++i) ts = (ts << 8) | bytes[pos + static_cast<std::size_t>(i)];
    pos += 8;
    // Peek the message length from the header.
    const std::size_t len = (static_cast<std::size_t>(bytes[pos + 16]) << 8) |
                            bytes[pos + 17];
    if (len < kHeaderSize || bytes.size() - pos < len) return std::nullopt;
    auto u = decode_update(bytes.subspan(pos, len));
    if (!u) return std::nullopt;
    u->time = static_cast<util::TimeMs>(ts);
    log.push_back(std::move(*u));
    pos += len;
  }
  return log;
}

}  // namespace bw::bgp::wire
