// Figure 15: cumulative number of handover and origin ASes by the share of
// UDP amplification attacks they participated in (Section 5.5).
//
// Paper: 501 handover ASes (55% of members) and 11,124 origin ASes (17% of
// advertised ASes) participate; most origins in < 3% of events, most
// handover ASes in < 10%; the top origin AS appears in 60% of the events
// (and as handover in 62%) while carrying only 6% of the attack traffic.
// On average: 1,086 amplifiers, 30 handover ASes, 73 origin ASes per attack.
#include "common.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig15");
  const auto& part = exp.report.participation;

  bench::print_header("Fig. 15", "AS participation in amplification attacks");
  auto csv = bench::open_csv("fig15_participation",
                             {"kind", "rank", "asn", "event_share",
                              "traffic_share"});
  util::TextTable table(
      {"top-10", "handover AS (share)", "origin AS (share)"});
  for (std::size_t i = 0; i < 10; ++i) {
    std::string h = "-";
    std::string o = "-";
    if (i < part.handover.size()) {
      h = "AS" + std::to_string(part.handover[i].asn) + " (" +
          util::fmt_percent(part.handover[i].event_share, 0) + ")";
      csv->write_row({"handover", std::to_string(i + 1),
                      std::to_string(part.handover[i].asn),
                      util::fmt_double(part.handover[i].event_share, 4),
                      util::fmt_double(part.handover[i].traffic_share, 4)});
    }
    if (i < part.origins.size()) {
      o = "AS" + std::to_string(part.origins[i].asn) + " (" +
          util::fmt_percent(part.origins[i].event_share, 0) + ")";
      csv->write_row({"origin", std::to_string(i + 1),
                      std::to_string(part.origins[i].asn),
                      util::fmt_double(part.origins[i].event_share, 4),
                      util::fmt_double(part.origins[i].traffic_share, 4)});
    }
    table.add_row({std::to_string(i + 1), h, o});
  }
  std::cout << table;

  auto share_below = [](const std::vector<core::AsParticipation>& v,
                        double bound) {
    if (v.empty()) return 0.0;
    std::size_t n = 0;
    for (const auto& p : v) {
      if (p.event_share <= bound) ++n;
    }
    return static_cast<double>(n) / static_cast<double>(v.size());
  };

  bench::print_paper_row("handover ASes participating", "501 (x scale)",
                         std::to_string(part.handover.size()));
  bench::print_paper_row("origin ASes participating", "11,124 (x scale)",
                         std::to_string(part.origins.size()));
  bench::print_paper_row("origins in <= 3% of events", "most",
                         util::fmt_percent(share_below(part.origins, 0.03), 0));
  bench::print_paper_row("handover ASes in <= 10% of events", "most",
                         util::fmt_percent(share_below(part.handover, 0.10), 0));
  if (!part.origins.empty()) {
    bench::print_paper_row(
        "top origin AS: event share / traffic share", "60% / 6%",
        util::fmt_percent(part.origins.front().event_share, 0) + " / " +
            util::fmt_percent(part.origins.front().traffic_share, 0));
  }
  bench::print_paper_row(
      "avg amplifiers / handover / origins per attack",
      "1,086 / 30 / 73 (amplifiers x scale)",
      util::fmt_double(part.avg_amplifiers_per_attack, 0) + " / " +
          util::fmt_double(part.avg_handover_per_attack, 0) + " / " +
          util::fmt_double(part.avg_origins_per_attack, 0));
  return 0;
}
