#include "util/status.hpp"

namespace bw::util {

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out(util::to_string(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace bw::util
