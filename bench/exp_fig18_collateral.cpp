// Figure 18: collateral damage during RTBH events for detected servers —
// sampled packets addressed to their stable service (top) ports, split by
// all such packets vs the subset actually dropped (Section 6.3).
//
// Paper: 300 RTBH events with top-port traffic for the ~1,000 detected
// servers; collateral damage up to 10^6 packets per event (upper bound;
// application-specific attack traffic cannot be separated).
#include "common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig18");
  const auto& col = exp.report.collateral;

  bench::print_header("Fig. 18", "collateral damage for detected servers");
  auto csv = bench::open_csv(
      "fig18_collateral",
      {"server", "event", "packets_to_top_ports", "packets_dropped",
       "estimated_original_packets"});
  std::vector<double> all_packets;
  std::vector<double> dropped_packets;
  for (const auto& e : col.events) {
    csv->write_row({e.server.to_string(), std::to_string(e.event_index),
                    std::to_string(e.packets_to_top_ports),
                    std::to_string(e.packets_actually_dropped),
                    std::to_string(e.est_original_packets)});
    all_packets.push_back(static_cast<double>(e.packets_to_top_ports));
    if (e.packets_actually_dropped > 0) {
      dropped_packets.push_back(
          static_cast<double>(e.packets_actually_dropped));
    }
  }

  util::TextTable table({"quantile", "packets to top ports (sampled)",
                         "actually dropped (sampled)"});
  for (const double q : {0.5, 0.9, 0.99, 1.0}) {
    table.add_row({util::fmt_percent(q, 0),
                   util::fmt_double(util::quantile(all_packets, q), 0),
                   util::fmt_double(util::quantile(dropped_packets, q), 0)});
  }
  std::cout << table;

  bench::print_paper_row(
      "(server, event) pairs with top-port traffic", "300 (x scale)",
      util::fmt_count(static_cast<std::int64_t>(col.events.size())));
  bench::print_paper_row(
      "servers considered", "~1,000 (x scale)",
      util::fmt_count(static_cast<std::int64_t>(col.servers_considered)));
  const double max_est =
      all_packets.empty() ? 0.0 : util::quantile(all_packets, 1.0) * 10000.0;
  bench::print_paper_row("worst-case collateral (original packets, est.)",
                         "up to 10^6",
                         util::fmt_double(max_est, 0));
  return 0;
}
