// Backpressure and load-shedding policy for the streaming ingest path.
//
// A live feed that outruns the monitor leaves exactly three defensible
// choices, and an operator must pick one explicitly (ROADMAP item 1: shed
// load loudly, never silently):
//
//   kBlockWithDeadline  apply backpressure to the producer: wait for ring
//                       space up to a wall-clock deadline, then shed. The
//                       lossless choice when the producer tolerates stalls
//                       (replay from disk, a kernel socket buffer).
//   kDropNewest         shed the incoming event immediately when the ring
//                       is full. The bounded-latency choice: the consumer
//                       never sees stale backlog, but sheds blindly.
//   kPriorityShed       protect the control plane and the attack signal:
//                       BGP updates are never shed (the producer waits for
//                       room), flow records that look legitimate (not
//                       redirected to the blackhole MAC) are shed first,
//                       attack-looking flows wait like BGP. Under overload
//                       the monitor keeps event segmentation exact and
//                       degrades only the traffic statistics.
//
// Every shed decision is counted in bw::obs (stream.shed_*) and reported
// through an optional ShedSink — the ground-truth shed log the overload CI
// job reconciles against the manifest counters.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "stream/event.hpp"
#include "stream/ring.hpp"
#include "util/status.hpp"

namespace bw::stream {

enum class ShedMode : std::uint8_t {
  kBlockWithDeadline,
  kDropNewest,
  kPriorityShed,
};

[[nodiscard]] std::string_view to_string(ShedMode mode);
/// Parse a CLI mode name: block | drop-newest | priority.
[[nodiscard]] util::Result<ShedMode> parse_shed_mode(std::string_view name);

enum class ShedReason : std::uint8_t {
  kQueueFull,      ///< kDropNewest: ring full at arrival
  kBlockDeadline,  ///< backpressure wait gave up (deadline or no consumer)
  kLegitFirst,     ///< kPriorityShed: legit-looking flow shed to save room
};

[[nodiscard]] std::string_view to_string(ShedReason reason);

/// One shed decision — the unit of the ground-truth shed log.
struct ShedRecord {
  EventKind kind{EventKind::kFlow};
  util::TimeMs time{0};
  std::uint64_t seq{0};
  ShedReason reason{ShedReason::kQueueFull};

  /// Stable one-line rendering ("flow 123456 seq 42 legit-first").
  [[nodiscard]] std::string to_line() const;
};

struct ShedConfig {
  ShedMode mode{ShedMode::kBlockWithDeadline};
  /// Ground-truth log sink; invoked once per shed decision, in producer
  /// order within each feed.
  std::function<void(const ShedRecord&)> shed_sink;
};

/// Per-feed shed accounting (plain counters; the process-wide bw::obs
/// mirrors are incremented alongside).
struct ShedStats {
  std::uint64_t pushed{0};
  std::uint64_t shed_total{0};
  std::uint64_t shed_bgp{0};
  std::uint64_t shed_flow_legit{0};
  std::uint64_t shed_flow_attack{0};

  ShedStats& operator+=(const ShedStats& o) {
    pushed += o.pushed;
    shed_total += o.shed_total;
    shed_bgp += o.shed_bgp;
    shed_flow_legit += o.shed_flow_legit;
    shed_flow_attack += o.shed_flow_attack;
    return *this;
  }
};

/// Producer-side gate in front of one feed ring. `make_room` is the
/// caller's "wait for the consumer" hook: in threaded mode it sleeps and
/// honours the block deadline, in lockstep mode it hands the consumer one
/// deterministic drain step. It returns false when waiting can no longer
/// help — at that point the event is shed (loudly, whatever the mode).
class Shedder {
 public:
  using MakeRoom = std::function<bool()>;

  explicit Shedder(ShedConfig config);

  /// Push `ev` through the policy. Returns true when the event entered the
  /// ring, false when it was shed (already counted and logged).
  bool offer(SpscRing<StreamEvent>& ring, StreamEvent&& ev,
             const MakeRoom& make_room);

  [[nodiscard]] const ShedStats& stats() const noexcept { return stats_; }

 private:
  void shed(StreamEvent& ev, ShedReason reason);

  ShedConfig cfg_;
  ShedStats stats_;
};

}  // namespace bw::stream
