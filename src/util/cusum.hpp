// One-sided CUSUM change detector — the classic alternative to the paper's
// EWMA thresholding, included for the detector-sensitivity ablation.
//
// The statistic accumulates positive deviations from a running baseline:
//
//   S_t = max(0, S_{t-1} + (x_t - mu_t - k * sigma_t))
//
// and alarms when S_t exceeds h * sigma_t. Baseline mean/SD are tracked
// with the same exponentially-weighted window the EWMA detector uses, and
// frozen while the statistic is non-zero so an ongoing burst does not poison
// its own baseline.
#pragma once

#include <cstddef>

#include "util/ewma.hpp"

namespace bw::util {

struct CusumConfig {
  std::size_t window{288};   ///< baseline window (slots)
  double slack_k{0.5};       ///< allowance in baseline SDs
  double threshold_h{5.0};   ///< alarm threshold in baseline SDs
  double min_sd{1e-9};
};

class CusumDetector {
 public:
  explicit CusumDetector(CusumConfig config = {});

  /// Feed the next sample; returns true when the statistic crosses the
  /// alarm threshold (the statistic resets after an alarm).
  bool push(double x);

  [[nodiscard]] double statistic() const noexcept { return s_; }
  [[nodiscard]] bool baseline_ready() const noexcept {
    return baseline_.window_full();
  }
  [[nodiscard]] const CusumConfig& config() const noexcept { return cfg_; }

  void reset();

 private:
  CusumConfig cfg_;
  EwmaDetector baseline_;
  double s_{0.0};
};

}  // namespace bw::util
