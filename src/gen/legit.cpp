#include "gen/legit.hpp"

#include <algorithm>
#include <cmath>

namespace bw::gen {

namespace {

constexpr double kInboundShare = 0.55;

}  // namespace

void LegitGenerator::emit_day(const HostProfile& host, int day,
                              const ixp::Platform::BurstSink& sink) {
  if (host.role == HostRole::kIdle) return;
  if (!rng_.chance(host.daily_activity)) return;
  const util::TimeMs day_start = static_cast<util::TimeMs>(day) * util::kDay;
  if (host.role == HostRole::kServer) {
    emit_server_day(host, day_start, sink);
  } else {
    emit_client_day(host, day_start, sink);
  }
}

util::TimeRange LegitGenerator::burst_window(util::TimeMs day_start) {
  // Diurnal bias: most traffic between 08:00 and 24:00 local time.
  const double hour = rng_.chance(0.85) ? rng_.uniform(8.0, 24.0)
                                        : rng_.uniform(0.0, 8.0);
  const util::TimeMs begin = day_start + util::hours(hour);
  const util::DurationMs len = util::minutes(rng_.uniform(5.0, 60.0));
  return {begin, begin + len};
}


std::size_t LegitGenerator::sticky_remote(net::Ipv4 host_ip,
                                          std::size_t pool_size) {
  if (pool_size == 0) return 0;
  // splitmix64 over (host, slot) with a handful of slots per host.
  constexpr std::size_t kRemotesPerHost = 3;
  std::uint64_t z = host_ip.value() +
                    0x9e3779b97f4a7c15ULL * (1 + rng_.index(kRemotesPerHost));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>((z ^ (z >> 31)) % pool_size);
}

void LegitGenerator::emit_server_day(const HostProfile& host,
                                     util::TimeMs day_start,
                                     const ixp::Platform::BurstSink& sink) {
  if (host.services.empty() || remotes_.client_ips.empty()) return;
  const double day_packets =
      host.mean_daily_packets * rng_.lognormal(0.0, 0.35);

  // --- Inbound: many remote clients hitting the (stable) service ports. ---
  const std::size_t in_bursts = 3 + rng_.index(6);
  const double in_packets = day_packets * kInboundShare;
  for (std::size_t i = 0; i < in_bursts; ++i) {
    const std::size_t r = sticky_remote(host.ip, remotes_.client_ips.size());
    flow::TrafficBurst b;
    b.window = burst_window(day_start);
    b.src_ip = remotes_.client_ips[r];
    b.dst_ip = host.ip;
    // The dominant service carries ~85% of inbound; tiny background noise
    // hits non-listening ports (scan-like bias the paper notes in §6.3).
    const net::ProtoPort service =
        rng_.chance(0.85) ? host.services.front()
                          : host.services[rng_.index(host.services.size())];
    if (rng_.chance(0.03)) {
      b.proto = net::Proto::kTcp;
      b.dst_port = static_cast<net::Port>(rng_.uniform_int(1, 65535));
    } else {
      b.proto = service.proto;
      b.dst_port = service.port;
    }
    b.src_port = static_cast<net::Port>(
        rng_.uniform_int(net::kEphemeralBase, 65535));
    b.packets = std::max<std::int64_t>(
        static_cast<std::int64_t>(in_packets / static_cast<double>(in_bursts)), 1);
    b.avg_packet_bytes = 700;
    b.handover = remotes_.client_ingress[r];
    sink(b);
  }

  // --- Outbound: replies from the service ports to ephemeral ports. ---
  const std::size_t out_bursts = 2 + rng_.index(5);
  const double out_packets = day_packets * (1.0 - kInboundShare);
  for (std::size_t i = 0; i < out_bursts; ++i) {
    const std::size_t r = sticky_remote(host.ip, remotes_.client_ips.size());
    const net::ProtoPort service =
        rng_.chance(0.85) ? host.services.front()
                          : host.services[rng_.index(host.services.size())];
    flow::TrafficBurst b;
    b.window = burst_window(day_start);
    b.src_ip = host.ip;
    b.dst_ip = remotes_.client_ips[r];
    b.proto = service.proto;
    b.src_port = service.port;
    b.dst_port = static_cast<net::Port>(
        rng_.uniform_int(net::kEphemeralBase, 65535));
    b.packets = std::max<std::int64_t>(
        static_cast<std::int64_t>(out_packets / static_cast<double>(out_bursts)),
        1);
    b.avg_packet_bytes = 900;
    b.handover = host.home_member;
    sink(b);
  }
}

void LegitGenerator::emit_client_day(const HostProfile& host,
                                     util::TimeMs day_start,
                                     const ixp::Platform::BurstSink& sink) {
  if (remotes_.server_ips.empty()) return;
  const double day_packets =
      host.mean_daily_packets * rng_.lognormal(0.0, 0.5);

  // The client's ephemeral port(s) of the day: its inbound "top port"
  // changes daily — the signature Fig. 17 keys on.
  const auto today_port = static_cast<net::Port>(
      rng_.uniform_int(net::kEphemeralBase, 61000));
  // Remote services a DSL client talks to: web, QUIC, game servers.
  constexpr net::Port kRemoteServices[] = {443, 443, 80, 3074, 27015, 53};

  const std::size_t sessions = 2 + rng_.index(4);
  for (std::size_t i = 0; i < sessions; ++i) {
    const std::size_t r = sticky_remote(host.ip, remotes_.server_ips.size());
    const net::Port remote_port =
        kRemoteServices[rng_.index(std::size(kRemoteServices))];
    const bool udp = remote_port == 3074 || remote_port == 27015 ||
                     (remote_port == 443 && rng_.chance(0.3));
    const auto proto = udp ? net::Proto::kUdp : net::Proto::kTcp;
    const auto session_port = static_cast<net::Port>(today_port + i);

    // Inbound: the remote service answering towards today's ephemeral port.
    flow::TrafficBurst in;
    in.window = burst_window(day_start);
    in.src_ip = remotes_.server_ips[r];
    in.dst_ip = host.ip;
    in.proto = proto;
    in.src_port = remote_port;
    in.dst_port = session_port;
    in.packets = std::max<std::int64_t>(
        static_cast<std::int64_t>(day_packets * 0.6 /
                                  static_cast<double>(sessions)),
        1);
    in.avg_packet_bytes = 1000;  // downloads dominate inbound volume
    in.handover = remotes_.server_ingress[r];
    sink(in);

    // Outbound: requests from the ephemeral port to the remote service.
    flow::TrafficBurst out;
    out.window = in.window;
    out.src_ip = host.ip;
    out.dst_ip = remotes_.server_ips[r];
    out.proto = proto;
    out.src_port = session_port;
    out.dst_port = remote_port;
    out.packets = std::max<std::int64_t>(
        static_cast<std::int64_t>(day_packets * 0.4 /
                                  static_cast<double>(sessions)),
        1);
    out.avg_packet_bytes = 200;  // requests/ACKs
    out.handover = host.home_member;
    sink(out);
  }
}

}  // namespace bw::gen
