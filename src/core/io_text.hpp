// Text (CSV) interchange for measurement corpora.
//
// The binary .bwds format is compact but private; these readers/writers
// speak plain CSV so (a) real control-plane/flow exports can be converted
// into a Dataset with any scripting language, and (b) our synthetic corpora
// can be inspected and plotted outside this library.
//
// Control plane (one row per BGP update):
//   time_ms,type,sender_asn,origin_asn,prefix,next_hop,communities
//   communities are space-separated "global:local" pairs.
//
// Flow records (one row per sampled packet record):
//   time_ms,src_ip,dst_ip,proto,src_port,dst_port,src_mac,dst_mac,packets,bytes
//
// Attribution tables:
//   mac,asn                (MAC -> member AS)
//   prefix,asn             (source prefix -> origin AS)
//
// The readers are streaming and fault-tolerant: lines are processed one at
// a time (CRLF-terminated lines from Windows-edited files are handled), and
// LoadOptions selects what a malformed row costs. Under Strictness::kStrict
// the first fault fails the load with a line-numbered Status; under kSkip a
// fault costs exactly one record; kRepair additionally salvages rows whose
// damage is confined to recoverable fields (malformed communities, a
// truncated packets/bytes tail). Every reader fills a LoadReport so callers
// can account for precisely what was dropped or repaired.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/dataset.hpp"
#include "core/ingest.hpp"
#include "util/status.hpp"

namespace bw::core {

// --- writers ---
void write_control_csv(std::ostream& os, const bgp::UpdateLog& log);
void write_flows_csv(std::ostream& os, const flow::FlowLog& flows);
void write_macs_csv(std::ostream& os,
                    const std::unordered_map<net::Mac, bgp::Asn>& macs);
void write_origins_csv(
    std::ostream& os,
    const std::vector<std::pair<net::Prefix, bgp::Asn>>& origins);

/// Write all five files of a dataset under `directory` (created if absent):
/// control.csv, flows.csv, macs.csv, origins.csv, period.csv.
void export_dataset_csv(const Dataset& dataset, const std::string& directory);

// --- streaming readers ---
// `report` (optional) receives per-row accounting; its `file` field is
// defaulted to the canonical file name when empty.
[[nodiscard]] util::Result<bgp::UpdateLog> read_control_csv(
    std::istream& is, const LoadOptions& options, LoadReport* report = nullptr);
[[nodiscard]] util::Result<flow::FlowLog> read_flows_csv(
    std::istream& is, const LoadOptions& options, LoadReport* report = nullptr);
[[nodiscard]] util::Result<std::unordered_map<net::Mac, bgp::Asn>>
read_macs_csv(std::istream& is, const LoadOptions& options,
              LoadReport* report = nullptr);
[[nodiscard]] util::Result<std::vector<std::pair<net::Prefix, bgp::Asn>>>
read_origins_csv(std::istream& is, const LoadOptions& options,
                 LoadReport* report = nullptr);
/// period.csv holds the measurement window itself; it cannot be skipped, so
/// a malformed period is an error at every strictness level.
[[nodiscard]] util::Result<util::TimeRange> read_period_csv(std::istream& is);

// --- legacy wrappers (strict mode; nullopt on any malformed row) ---
[[nodiscard]] std::optional<bgp::UpdateLog> read_control_csv(std::istream& is);
[[nodiscard]] std::optional<flow::FlowLog> read_flows_csv(std::istream& is);
[[nodiscard]] std::optional<std::unordered_map<net::Mac, bgp::Asn>>
read_macs_csv(std::istream& is);
[[nodiscard]] std::optional<std::vector<std::pair<net::Prefix, bgp::Asn>>>
read_origins_csv(std::istream& is);

/// Load a dataset from a directory written by export_dataset_csv. Under
/// kSkip/kRepair the Dataset is built with quarantine enabled (exact
/// duplicate flows deduplicated, out-of-period records dropped) and the
/// corpus survives any fault that leaves period.csv intact.
[[nodiscard]] util::Result<Dataset> load_dataset_csv(
    const std::string& directory, const LoadOptions& options = {},
    IngestReport* report = nullptr);

/// Legacy wrapper: strict load_dataset_csv; throws std::runtime_error on
/// missing files or malformed content.
[[nodiscard]] Dataset import_dataset_csv(const std::string& directory);

}  // namespace bw::core
