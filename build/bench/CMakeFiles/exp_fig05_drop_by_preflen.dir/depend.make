# Empty dependencies file for exp_fig05_drop_by_preflen.
# This may be replaced when dependencies are built.
