file(REMOVE_RECURSE
  "CMakeFiles/exp_tab02_pre_classes.dir/exp_tab02_pre_classes.cpp.o"
  "CMakeFiles/exp_tab02_pre_classes.dir/exp_tab02_pre_classes.cpp.o.d"
  "exp_tab02_pre_classes"
  "exp_tab02_pre_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_tab02_pre_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
