# Empty dependencies file for exp_sec31_rs_share.
# This may be replaced when dependencies are built.
