// Streaming-ingest microbenchmarks.
//
// Two families:
//   BM_RingPushPop        raw SPSC ring throughput, single thread (push
//                         immediately popped — the uncontended fast path)
//   BM_LockstepReplay     a full corpus through rings -> shedding ->
//                         watermark mux -> monitor in lockstep mode (the
//                         convergence-proof path)
//
// After the google-benchmark run, main() times the same two shapes and
// writes $BW_CSV_DIR/BENCH_stream.json in the unified bench schema (v2)
// consumed by tools/bench-gate, so the ingest-path perf trajectory is
// tracked across PRs alongside BENCH_pipeline.json.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "common.hpp"
#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "stream/replay.hpp"
#include "stream/ring.hpp"
#include "testing/bench_gate.hpp"

namespace {

using namespace bw;

const core::ScenarioRun& corpus() {
  // Smaller than the pipeline-bench corpus: the ingest path is per-event,
  // so a few hundred thousand events already give stable numbers.
  static const core::ScenarioRun run = [] {
    gen::ScenarioConfig cfg = core::default_benchmark_scenario();
    cfg.scale = 0.05;
    return core::run_scenario(cfg);
  }();
  return run;
}

void BM_RingPushPop(benchmark::State& state) {
  stream::SpscRing<stream::StreamEvent> ring(
      static_cast<std::size_t>(state.range(0)));
  flow::FlowRecord rec;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ring.try_push(stream::StreamEvent::from(rec, seq++)));
    stream::StreamEvent out;
    benchmark::DoNotOptimize(ring.try_pop(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingPushPop)->Arg(64)->Arg(4096);

void BM_LockstepReplay(benchmark::State& state) {
  const core::Dataset& dataset = corpus().dataset;
  stream::ReplayOptions options;
  options.lockstep = true;
  for (auto _ : state) {
    core::RtbhMonitor monitor(core::MonitorConfig{},
                              [](const core::Alert&) {});
    stream::ReplayStats stats =
        stream::replay_streaming(dataset, monitor, options);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["flows"] =
      static_cast<double>(dataset.summary().flow_records);
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(dataset.summary().flow_records));
}
BENCHMARK(BM_LockstepReplay)->Unit(benchmark::kMillisecond);

/// Raw single-thread ring throughput (push+pop pairs per second), timed
/// outside google-benchmark so the JSON writer does not depend on its
/// reporter format.
double ring_ops_per_s() {
  constexpr std::uint64_t kOps = 2'000'000;
  stream::SpscRing<stream::StreamEvent> ring(4096);
  flow::FlowRecord rec;
  const double ms = bench::time_best_ms(3, [&] {
    for (std::uint64_t i = 0; i < kOps; ++i) {
      benchmark::DoNotOptimize(
          ring.try_push(stream::StreamEvent::from(rec, i)));
      stream::StreamEvent out;
      benchmark::DoNotOptimize(ring.try_pop(out));
    }
  });
  return ms > 0.0 ? static_cast<double>(kOps) / (ms / 1000.0) : 0.0;
}

double time_lockstep_ms(const core::Dataset& dataset, int repetitions) {
  stream::ReplayOptions options;
  options.lockstep = true;
  return bench::time_best_ms(repetitions, [&] {
    core::RtbhMonitor monitor(core::MonitorConfig{},
                              [](const core::Alert&) {});
    stream::ReplayStats stats =
        stream::replay_streaming(dataset, monitor, options);
    benchmark::DoNotOptimize(stats);
  });
}

/// bench_out/BENCH_stream.json: cross-PR perf tracking for the streaming
/// ingest path, in the unified bench schema (v2) of tools/bench-gate. The
/// lockstep replay is single-threaded by construction, so only the
/// threads=1 entries are meaningful; the map shape matches the other
/// BENCH_*.json files so the gate reads them all the same way.
void write_stream_json() {
  const char* dir_env = std::getenv("BW_CSV_DIR");
  const std::string dir = dir_env != nullptr ? dir_env : "bench_out";
  std::filesystem::create_directories(dir);

  const core::Dataset& dataset = corpus().dataset;
  const auto summary = dataset.summary();
  const double flow_records = static_cast<double>(summary.flow_records);

  const double ops = ring_ops_per_s();
  std::cerr << "stream ring ops_per_s=" << ops << "\n";
  const double wall_ms = time_lockstep_ms(dataset, 3);
  std::cerr << "stream lockstep wall_ms=" << wall_ms << "\n";
  const double fps =
      wall_ms > 0.0 ? flow_records / (wall_ms / 1000.0) : 0.0;

  std::ofstream os(dir + "/BENCH_stream.json", std::ios::trunc);
  os << "{\n";
  os << "  \"bench_schema_version\": " << testing::kBenchSchemaVersion
     << ",\n";
  os << "  \"benchmark\": \"stream_replay\",\n";
  os << "  \"scale\": 0.05,\n";
  os << "  \"flow_records\": " << summary.flow_records << ",\n";
  os << "  \"blackhole_updates\": " << summary.blackhole_updates << ",\n";
  os << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
     << ",\n";
  os << "  \"ring_ops_per_s_by_threads\": {\n";
  os << "    \"1\": " << ops << "\n";
  os << "  },\n";
  os << "  \"wall_ms_by_threads\": {\n";
  os << "    \"1\": " << wall_ms << "\n";
  os << "  },\n";
  os << "  \"flows_per_s_by_threads\": {\n";
  os << "    \"1\": " << fps << "\n";
  os << "  }\n";
  os << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_stream_json();
  return 0;
}
