// Ablation: how sampling density shapes the measurement study.
//
// The paper stresses (Sections 5.2, 6.3, 8) that 1:10,000 sampling is the
// binding constraint of the whole methodology: 46% of pre-RTBH events show
// no packets at all, and collateral-damage analysis "relies on packet
// samples". This ablation regenerates the same scenario at three sampling
// densities and shows how the headline statistics move.
#include "common.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace bw;
  std::cout << "[ablation-sampling] regenerating one scenario at three "
               "sampling densities (small scale, uncached)...\n";

  util::TextTable table({"sampling", "flow records", "no-data share",
                         "anomaly<=10m share", "clients", "servers"});
  auto csv = bench::open_csv("ablation_sampling",
                             {"rate", "records", "no_data", "anomaly10m",
                              "clients", "servers"});
  for (const std::uint32_t rate : {1000u, 10000u, 100000u}) {
    gen::ScenarioConfig cfg;
    // Small scale: the 1:1000 leg produces ~10x the records of the default.
    cfg.scale = 0.03;
    cfg.sampling_rate = rate;
    const core::ScenarioRun run = core::run_scenario(cfg, std::string{});
    const auto report = core::run_pipeline(run.dataset);
    const double total = static_cast<double>(report.pre.total());
    const double no_data = static_cast<double>(report.pre.no_data) / total;
    const double anomaly =
        static_cast<double>(report.pre.data_anomaly_10m) / total;
    table.add_row({"1:" + std::to_string(rate),
                   util::fmt_count(static_cast<std::int64_t>(
                       run.dataset.flows().size())),
                   util::fmt_percent(no_data, 1), util::fmt_percent(anomaly, 1),
                   std::to_string(report.ports.clients),
                   std::to_string(report.ports.servers)});
    csv->write_row({std::to_string(rate),
                    std::to_string(run.dataset.flows().size()),
                    util::fmt_double(no_data, 4), util::fmt_double(anomaly, 4),
                    std::to_string(report.ports.clients),
                    std::to_string(report.ports.servers)});
  }
  bench::print_header("Ablation", "sampling density vs headline statistics");
  std::cout << table;
  bench::print_paper_row(
      "reading", "denser sampling -> fewer blind pre-windows,",
      "more DDoS correlation and more classifiable hosts; 1:100k washes "
      "the study out");
  return 0;
}
