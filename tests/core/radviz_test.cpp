// Unit tests for the RadViz projection (Section 6.1, Fig. 16) on synthetic
// PortStatsReport inputs with hand-computable geometry: single-feature
// hosts land exactly on their anchor, the min-days filter and the
// zero-feature skip drop the right hosts, and the client/server half-plane
// split matches the anchor semantics.
#include <gtest/gtest.h>

#include "core/radviz.hpp"

namespace bw::core {
namespace {

HostPortStats host(std::uint32_t ip, std::size_t src_in, std::size_t dst_in,
                   std::size_t src_out, std::size_t dst_out,
                   std::size_t days) {
  HostPortStats h;
  h.ip = net::Ipv4(ip);
  h.unique_src_ports_in = src_in;
  h.unique_dst_ports_in = dst_in;
  h.unique_src_ports_out = src_out;
  h.unique_dst_ports_out = dst_out;
  h.days_bidirectional = days;
  return h;
}

TEST(RadvizTest, AnchorsOnUnitCircle) {
  const RadvizReport r = radviz_projection(PortStatsReport{});
  ASSERT_EQ(r.anchors.size(), 4u);
  EXPECT_EQ(r.anchors[0], (std::pair<double, double>{1.0, 0.0}));
  EXPECT_EQ(r.anchors[1], (std::pair<double, double>{0.0, 1.0}));
  EXPECT_EQ(r.anchors[2], (std::pair<double, double>{-1.0, 0.0}));
  EXPECT_EQ(r.anchors[3], (std::pair<double, double>{0.0, -1.0}));
  EXPECT_TRUE(r.points.empty());
  EXPECT_EQ(r.client_side_count, 0u);
  EXPECT_EQ(r.server_side_count, 0u);
}

TEST(RadvizTest, SingleFeatureHostsLandOnTheirAnchor) {
  PortStatsReport stats;
  // One dominant feature each: the point settles exactly on that anchor.
  stats.hosts.push_back(host(0x0A000001, 500, 0, 0, 0, 25));  // src-in
  stats.hosts.push_back(host(0x0A000002, 0, 500, 0, 0, 25));  // dst-in
  stats.hosts.push_back(host(0x0A000003, 0, 0, 500, 0, 25));  // src-out
  stats.hosts.push_back(host(0x0A000004, 0, 0, 0, 500, 25));  // dst-out

  const RadvizReport r = radviz_projection(stats, 20);
  ASSERT_EQ(r.points.size(), 4u);
  EXPECT_DOUBLE_EQ(r.points[0].x, 1.0);
  EXPECT_DOUBLE_EQ(r.points[0].y, 0.0);
  EXPECT_DOUBLE_EQ(r.points[1].x, 0.0);
  EXPECT_DOUBLE_EQ(r.points[1].y, 1.0);
  EXPECT_DOUBLE_EQ(r.points[2].x, -1.0);
  EXPECT_DOUBLE_EQ(r.points[2].y, 0.0);
  EXPECT_DOUBLE_EQ(r.points[3].x, 0.0);
  EXPECT_DOUBLE_EQ(r.points[3].y, -1.0);

  // Client pull is the dst-in (0,1) / src-out (-1,0) pair; server pull the
  // other two. The split is the (-x + y) > 0 half-plane.
  EXPECT_FALSE(r.points[0].client_side);
  EXPECT_TRUE(r.points[1].client_side);
  EXPECT_TRUE(r.points[2].client_side);
  EXPECT_FALSE(r.points[3].client_side);
  EXPECT_EQ(r.client_side_count, 2u);
  EXPECT_EQ(r.server_side_count, 2u);
}

TEST(RadvizTest, BalancedHostSettlesAtOriginOnServerSide) {
  PortStatsReport stats;
  stats.hosts.push_back(host(0x0A000001, 100, 100, 100, 100, 25));
  const RadvizReport r = radviz_projection(stats, 20);
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_DOUBLE_EQ(r.points[0].x, 0.0);
  EXPECT_DOUBLE_EQ(r.points[0].y, 0.0);
  // Exactly on the boundary: (-x + y) > 0 is false, so server side.
  EXPECT_FALSE(r.points[0].client_side);
  EXPECT_EQ(r.server_side_count, 1u);
}

TEST(RadvizTest, ProjectionIsStiffnessWeightedMean) {
  PortStatsReport stats;
  // 300 towards (1,0) and 100 towards (0,1): x = 300/400, y = 100/400.
  stats.hosts.push_back(host(0x0A000001, 300, 100, 0, 0, 25));
  const RadvizReport r = radviz_projection(stats, 20);
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_DOUBLE_EQ(r.points[0].x, 0.75);
  EXPECT_DOUBLE_EQ(r.points[0].y, 0.25);
  EXPECT_FALSE(r.points[0].client_side);  // -0.75 + 0.25 < 0
}

TEST(RadvizTest, MinDaysFilterDropsShortLivedHosts) {
  PortStatsReport stats;
  stats.hosts.push_back(host(0x0A000001, 100, 0, 0, 0, 19));
  stats.hosts.push_back(host(0x0A000002, 100, 0, 0, 0, 20));
  const RadvizReport strict = radviz_projection(stats, 20);
  ASSERT_EQ(strict.points.size(), 1u);
  EXPECT_EQ(strict.points[0].ip, net::Ipv4(0x0A000002));

  // Lowering the criterion admits the short-lived host too.
  const RadvizReport lax = radviz_projection(stats, 10);
  EXPECT_EQ(lax.points.size(), 2u);
}

TEST(RadvizTest, ZeroFeatureHostsAreSkipped) {
  PortStatsReport stats;
  stats.hosts.push_back(host(0x0A000001, 0, 0, 0, 0, 25));
  const RadvizReport r = radviz_projection(stats, 20);
  EXPECT_TRUE(r.points.empty());
  EXPECT_EQ(r.client_side_count + r.server_side_count, 0u);
}

TEST(RadvizTest, ClassificationIsCarriedThrough) {
  PortStatsReport stats;
  auto h = host(0x0A000001, 0, 200, 0, 0, 25);
  h.classification = HostClass::kClient;
  stats.hosts.push_back(h);
  const RadvizReport r = radviz_projection(stats, 20);
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_EQ(r.points[0].classification, HostClass::kClient);
}

}  // namespace
}  // namespace bw::core
