#include "gen/shard.hpp"

#include <algorithm>

namespace bw::gen {

std::vector<ShardRange> plan_shards(std::span<const EmissionUnit> plan,
                                    std::size_t shard_count) {
  std::vector<ShardRange> shards;
  if (plan.empty()) return shards;
  shard_count = std::clamp<std::size_t>(shard_count, 1, plan.size());
  shards.reserve(shard_count);

  std::uint64_t total = 0;
  for (const EmissionUnit& u : plan) total += std::max<std::uint64_t>(u.cost, 1);

  // Greedy sweep: close shard k once its cumulative cost reaches the k-th
  // equal share of the total, keeping at least one unit per shard and
  // enough units behind the cursor for the remaining shards.
  std::uint64_t seen = 0;
  std::size_t begin = 0;
  for (std::size_t k = 0; k + 1 < shard_count; ++k) {
    const std::uint64_t target = total / shard_count * (k + 1);
    std::size_t end = begin;
    const std::size_t last_start = plan.size() - (shard_count - 1 - k);
    while (end < last_start &&
           (end == begin ||
            seen + std::max<std::uint64_t>(plan[end].cost, 1) <= target)) {
      seen += std::max<std::uint64_t>(plan[end].cost, 1);
      ++end;
    }
    shards.push_back({begin, end});
    begin = end;
  }
  shards.push_back({begin, plan.size()});
  return shards;
}

}  // namespace bw::gen
