
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ixp/blackhole_service.cpp" "src/CMakeFiles/bw_ixp.dir/ixp/blackhole_service.cpp.o" "gcc" "src/CMakeFiles/bw_ixp.dir/ixp/blackhole_service.cpp.o.d"
  "/root/repo/src/ixp/fabric.cpp" "src/CMakeFiles/bw_ixp.dir/ixp/fabric.cpp.o" "gcc" "src/CMakeFiles/bw_ixp.dir/ixp/fabric.cpp.o.d"
  "/root/repo/src/ixp/member.cpp" "src/CMakeFiles/bw_ixp.dir/ixp/member.cpp.o" "gcc" "src/CMakeFiles/bw_ixp.dir/ixp/member.cpp.o.d"
  "/root/repo/src/ixp/platform.cpp" "src/CMakeFiles/bw_ixp.dir/ixp/platform.cpp.o" "gcc" "src/CMakeFiles/bw_ixp.dir/ixp/platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bw_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_peeringdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
