// Descriptive-statistics toolkit used throughout the analysis pipeline:
// streaming moments (Welford), quantiles, empirical CDFs, and weighted
// mean/SD as required by the paper's EWMA anomaly detector.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bw::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
class StreamingStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n).
  [[nodiscard]] double variance() const noexcept {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  /// Sample variance (divides by n-1); 0 for fewer than two samples.
  [[nodiscard]] double sample_variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const StreamingStats& other) noexcept;

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double sum_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Quantile of a sample using linear interpolation between order statistics
/// (type-7, the numpy/pandas default). `q` is clamped to [0, 1]. The input
/// need not be sorted; an empty input yields 0.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Convenience median.
[[nodiscard]] inline double median(std::span<const double> values) {
  return quantile(values, 0.5);
}

/// One point of an empirical CDF.
struct CdfPoint {
  double value{0.0};
  double cumulative_fraction{0.0};  ///< P(X <= value)
};

/// Empirical CDF of a sample (sorted unique values with cumulative shares).
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(std::span<const double> values);

/// Evaluate an empirical CDF at `x` (step interpolation).
[[nodiscard]] double cdf_at(std::span<const CdfPoint> cdf, double x);

/// Weighted mean of `values` with weights `w` (sizes must match; returns 0
/// when total weight is 0).
[[nodiscard]] double weighted_mean(std::span<const double> values,
                                   std::span<const double> w);

/// Weighted population standard deviation around the weighted mean.
[[nodiscard]] double weighted_stddev(std::span<const double> values,
                                     std::span<const double> w);

/// Pearson correlation coefficient; 0 when either side is constant.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

}  // namespace bw::util
