#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "gen/amplification.hpp"
#include "gen/ddos.hpp"
#include "gen/legit.hpp"
#include "gen/operator_model.hpp"
#include "gen/scan.hpp"

namespace bw::gen {
namespace {

AmplifierPoolConfig small_pool_config() {
  AmplifierPoolConfig cfg;
  cfg.origin_as_count = 50;
  cfg.amplifier_count = 2000;
  return cfg;
}

TEST(AmplifierPoolTest, BuildsRequestedPopulation) {
  AmplifierPool pool(small_pool_config(), {1, 2, 3}, util::Rng(1));
  EXPECT_EQ(pool.all().size(), 2000u);
  EXPECT_EQ(pool.origins().size(), 50u);
  for (const auto& a : pool.all()) {
    EXPECT_TRUE(net::is_amplification_port(a.udp_port));
    EXPECT_GE(a.origin, 210000u);
  }
  for (const auto& o : pool.origins()) {
    EXPECT_TRUE(o.handover == 1 || o.handover == 2 || o.handover == 3);
  }
}

TEST(AmplifierPoolTest, AmplifiersLiveInOriginPrefix) {
  AmplifierPool pool(small_pool_config(), {1}, util::Rng(2));
  std::unordered_map<bgp::Asn, net::Prefix> by_asn;
  for (const auto& o : pool.origins()) by_asn.emplace(o.asn, o.prefix);
  for (const auto& a : pool.all()) {
    ASSERT_TRUE(by_asn.contains(a.origin));
    EXPECT_TRUE(by_asn.at(a.origin).contains(a.ip));
  }
}

TEST(AmplifierPoolTest, DrawFiltersByPort) {
  AmplifierPool pool(small_pool_config(), {1}, util::Rng(3));
  util::Rng rng(4);
  const auto drawn = pool.draw(123, 30, rng);  // NTP
  EXPECT_LE(drawn.size(), 30u);
  EXPECT_FALSE(drawn.empty());
  std::set<const Amplifier*> uniq(drawn.begin(), drawn.end());
  EXPECT_EQ(uniq.size(), drawn.size()) << "draw must return distinct amplifiers";
  for (const auto* a : drawn) EXPECT_EQ(a->udp_port, 123);
}

TEST(AmplifierPoolTest, DrawUnknownPortIsEmpty) {
  AmplifierPool pool(small_pool_config(), {1}, util::Rng(5));
  util::Rng rng(6);
  EXPECT_TRUE(pool.draw(8080, 10, rng).empty());
}

TEST(AmplifierPoolTest, DominantOriginHasLargestShare) {
  AmplifierPoolConfig cfg = small_pool_config();
  cfg.amplifier_count = 20000;
  cfg.dominant_origin_share = 0.10;
  AmplifierPool pool(cfg, {1}, util::Rng(7));
  std::unordered_map<bgp::Asn, std::size_t> counts;
  for (const auto& a : pool.all()) ++counts[a.origin];
  const double dom_share =
      static_cast<double>(counts[pool.dominant_origin()]) /
      static_cast<double>(pool.all().size());
  EXPECT_NEAR(dom_share, 0.10, 0.03);
}

class DdosTest : public ::testing::Test {
 protected:
  DdosTest() : pool_(small_pool_config(), {1, 2}, util::Rng(1)) {}

  std::vector<flow::TrafficBurst> collect(const AttackSpec& spec) {
    DdosGenerator ddos(pool_, util::Rng(2));
    std::vector<flow::TrafficBurst> bursts;
    const std::vector<flow::MemberId> ingress{1, 2, 3};
    ddos.emit(spec, ingress, [&](const flow::TrafficBurst& b) {
      bursts.push_back(b);
    });
    return bursts;
  }

  AmplifierPool pool_;
};

TEST_F(DdosTest, AmplificationAttackShape) {
  AttackSpec spec;
  spec.victim = net::Ipv4(24, 0, 0, 1);
  spec.window = {0, util::kHour};
  spec.total_packets = 1000000;
  spec.amplifier_count = 40;
  spec.vectors.push_back({VectorKind::kUdpAmplification, 123, 1.0});
  const auto bursts = collect(spec);
  ASSERT_FALSE(bursts.empty());
  std::int64_t total = 0;
  std::set<net::Ipv4> sources;
  for (const auto& b : bursts) {
    EXPECT_EQ(b.proto, net::Proto::kUdp);
    EXPECT_EQ(b.src_port, 123);  // reflected from the NTP service port
    EXPECT_EQ(b.dst_ip, spec.victim);
    EXPECT_EQ(b.window, spec.window);
    total += b.packets;
    sources.insert(b.src_ip);
  }
  EXPECT_GT(sources.size(), 10u);  // distributed reflectors
  EXPECT_LE(total, spec.total_packets);
  EXPECT_GT(total, spec.total_packets / 2);
}

TEST_F(DdosTest, MultiVectorSplitsVolume) {
  AttackSpec spec;
  spec.victim = net::Ipv4(24, 0, 0, 1);
  spec.window = {0, util::kHour};
  spec.total_packets = 1000000;
  spec.vectors.push_back({VectorKind::kUdpAmplification, 123, 0.7});
  spec.vectors.push_back({VectorKind::kUdpAmplification, 53, 0.3});
  const auto bursts = collect(spec);
  std::int64_t ntp = 0;
  std::int64_t dns = 0;
  for (const auto& b : bursts) {
    if (b.src_port == 123) ntp += b.packets;
    if (b.src_port == 53) dns += b.packets;
  }
  EXPECT_GT(ntp, dns);
}

TEST_F(DdosTest, SynFloodUsesTcpAndSpoofedSources) {
  AttackSpec spec;
  spec.victim = net::Ipv4(24, 0, 0, 1);
  spec.window = {0, util::kHour};
  spec.total_packets = 100000;
  spec.vectors.push_back({VectorKind::kSynFlood, 0, 1.0});
  const auto bursts = collect(spec);
  ASSERT_FALSE(bursts.empty());
  for (const auto& b : bursts) {
    EXPECT_EQ(b.proto, net::Proto::kTcp);
    EXPECT_EQ(b.src_ip.octet(0), 192);  // spoofed out of 192/8
    EXPECT_LE(b.avg_packet_bytes, 80);
  }
}

TEST_F(DdosTest, IncreasingPortCarpetSweepsPorts) {
  AttackSpec spec;
  spec.victim = net::Ipv4(24, 0, 0, 1);
  spec.window = {0, util::kHour};
  spec.total_packets = 100000;
  spec.vectors.push_back({VectorKind::kUdpIncreasingPorts, 0, 1.0});
  const auto bursts = collect(spec);
  ASSERT_GT(bursts.size(), 2u);
  std::set<net::Port> ports;
  for (const auto& b : bursts) ports.insert(b.dst_port);
  EXPECT_EQ(ports.size(), bursts.size());  // strictly changing ports
}

TEST_F(DdosTest, EmptySpecEmitsNothing) {
  AttackSpec spec;
  EXPECT_TRUE(collect(spec).empty());
}

TEST(LegitTest, ServerDayHasStableTopPortBothDirections) {
  RemoteEndpoints remotes;
  for (int i = 0; i < 20; ++i) {
    remotes.client_ips.push_back(net::Ipv4(16, 0, 0, static_cast<uint8_t>(i)));
    remotes.client_ingress.push_back(1);
    remotes.server_ips.push_back(net::Ipv4(16, 1, 0, static_cast<uint8_t>(i)));
    remotes.server_ingress.push_back(2);
  }
  LegitGenerator legit(remotes, util::Rng(1));
  HostProfile server;
  server.ip = net::Ipv4(24, 0, 0, 1);
  server.role = HostRole::kServer;
  server.home_member = 3;
  server.services = {{net::Proto::kTcp, 443}};
  server.daily_activity = 1.0;
  server.mean_daily_packets = 100000;

  std::vector<flow::TrafficBurst> bursts;
  legit.emit_day(server, 5, [&](const flow::TrafficBurst& b) {
    bursts.push_back(b);
  });
  ASSERT_FALSE(bursts.empty());
  std::int64_t inbound_to_service = 0;
  std::int64_t inbound_total = 0;
  bool has_outbound = false;
  for (const auto& b : bursts) {
    EXPECT_TRUE(b.window.begin >= 5 * util::kDay &&
                b.window.begin < 6 * util::kDay);
    if (b.dst_ip == server.ip) {
      inbound_total += b.packets;
      if (b.dst_port == 443) inbound_to_service += b.packets;
    } else {
      EXPECT_EQ(b.src_ip, server.ip);
      EXPECT_EQ(b.handover, server.home_member);
      has_outbound = true;
    }
  }
  EXPECT_TRUE(has_outbound);
  EXPECT_GT(inbound_to_service, inbound_total / 2);
}

TEST(LegitTest, ClientTopPortChangesDaily) {
  RemoteEndpoints remotes;
  remotes.server_ips.push_back(net::Ipv4(16, 1, 0, 1));
  remotes.server_ingress.push_back(2);
  LegitGenerator legit(remotes, util::Rng(2));
  HostProfile client;
  client.ip = net::Ipv4(24, 0, 0, 2);
  client.role = HostRole::kClient;
  client.home_member = 3;
  client.daily_activity = 1.0;
  client.mean_daily_packets = 50000;

  std::set<net::Port> daily_ports;
  for (int day = 0; day < 10; ++day) {
    net::Port day_port = 0;
    std::int64_t best = 0;
    std::map<net::Port, std::int64_t> inbound;
    legit.emit_day(client, day, [&](const flow::TrafficBurst& b) {
      if (b.dst_ip == client.ip) inbound[b.dst_port] += b.packets;
    });
    for (const auto& [port, pkts] : inbound) {
      if (pkts > best) {
        best = pkts;
        day_port = port;
      }
    }
    if (day_port != 0) daily_ports.insert(day_port);
  }
  EXPECT_GE(daily_ports.size(), 8u) << "client top port should vary daily";
}

TEST(LegitTest, IdleHostEmitsNothing) {
  LegitGenerator legit({}, util::Rng(3));
  HostProfile idle;
  idle.role = HostRole::kIdle;
  int bursts = 0;
  legit.emit_day(idle, 0, [&](const flow::TrafficBurst&) { ++bursts; });
  EXPECT_EQ(bursts, 0);
}

TEST(ScanTest, EmitsLowVolumeProbes) {
  ScanGenerator scans({.bursts_per_ip_day = 1.0, .packets_per_burst = 100},
                      util::Rng(4));
  const std::vector<net::Ipv4> targets{net::Ipv4(24, 0, 0, 9)};
  const std::vector<flow::MemberId> ingress{1};
  int count = 0;
  scans.emit(targets, ingress, {0, util::days(10)},
             [&](const flow::TrafficBurst& b) {
               EXPECT_EQ(b.dst_ip, targets[0]);
               EXPECT_EQ(b.handover, 1u);
               EXPECT_GT(b.packets, 0);
               ++count;
             });
  EXPECT_EQ(count, 10);  // probability 1 per day
}

class OperatorModelTest : public ::testing::Test {
 protected:
  ixp::BlackholeService svc_{64600};
};

TEST_F(OperatorModelTest, MitigationAlternatesAnnounceWithdraw) {
  OperatorModel op(svc_, util::Rng(1));
  const auto prefix = *net::Prefix::parse("10.0.0.1/32");
  const auto mit = op.mitigate(prefix, 100, 200, util::kHour, 2 * util::kHour,
                               util::days(1), {});
  ASSERT_FALSE(mit.updates.empty());
  EXPECT_EQ(mit.updates.size() % 2, 0u);  // paired announce/withdraw
  util::TimeMs prev = 0;
  for (std::size_t i = 0; i < mit.updates.size(); ++i) {
    const auto& u = mit.updates[i];
    EXPECT_EQ(u.type, i % 2 == 0 ? bgp::UpdateType::kAnnounce
                                 : bgp::UpdateType::kWithdraw);
    EXPECT_TRUE(u.is_blackhole());
    EXPECT_GE(u.time, prev);
    prev = u.time;
    EXPECT_EQ(u.prefix, prefix);
    EXPECT_EQ(u.sender_asn, 100u);
    EXPECT_EQ(u.origin_asn, 200u);
  }
  EXPECT_GT(mit.span.begin, util::kHour);  // reaction latency
  EXPECT_LE(mit.span.end, util::days(1));
  EXPECT_EQ(mit.announcements * 2, mit.updates.size());
}

TEST_F(OperatorModelTest, NeverAnnouncesAfterDeadline) {
  OperatorModel op(svc_, util::Rng(2));
  const auto prefix = *net::Prefix::parse("10.0.0.1/32");
  for (int i = 0; i < 20; ++i) {
    const auto mit = op.mitigate(prefix, 1, 1, util::kHour, util::days(30),
                                 2 * util::kHour, {});
    for (const auto& u : mit.updates) {
      EXPECT_LE(u.time, 2 * util::kHour);
    }
  }
}

TEST_F(OperatorModelTest, LongLivedZombieNeverWithdraws) {
  OperatorModel op(svc_, util::Rng(3));
  const auto prefix = *net::Prefix::parse("10.0.0.2/32");
  const auto log = op.long_lived(prefix, 1, 2, {100, 200}, false);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].type, bgp::UpdateType::kAnnounce);
  const auto log2 = op.long_lived(prefix, 1, 2, {100, 200}, true);
  ASSERT_EQ(log2.size(), 2u);
  EXPECT_EQ(log2[1].type, bgp::UpdateType::kWithdraw);
  EXPECT_EQ(log2[1].time, 200);
}

TEST_F(OperatorModelTest, TargetedCommunitiesAttached) {
  OperatorModel op(svc_, util::Rng(4));
  const auto prefix = *net::Prefix::parse("10.0.0.1/32");
  const auto mit =
      op.mitigate(prefix, 1, 1, 0, util::kHour, util::days(1), {},
                  {bgp::Community{0, 77}});
  for (const auto& u : mit.updates) {
    EXPECT_TRUE(bgp::has_community(u.communities, bgp::Community{0, 77}));
  }
}

}  // namespace
}  // namespace bw::gen
