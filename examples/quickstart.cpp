// Quickstart: generate a small synthetic IXP scenario, run the full RTBH
// analysis pipeline, and print the headline findings of the paper.
//
//   ./quickstart [scale]   (default scale 0.05 — a few seconds)
#include <cstdlib>
#include <iostream>

#include "core/pipeline.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bw;

  gen::ScenarioConfig cfg;
  cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  if (cfg.scale <= 0.0) cfg.scale = 0.05;

  std::cout << "Generating scenario (scale " << cfg.scale << ", "
            << cfg.scaled(cfg.members) << " members, "
            << cfg.scaled(cfg.rtbh_events) << " short-term RTBH events over "
            << util::format_duration(cfg.period.length()) << ")...\n";

  core::ScenarioRun run = core::run_scenario(cfg, std::string{});  // no cache
  const auto summary = run.dataset.summary();
  std::cout << "Corpus: " << util::fmt_count(static_cast<std::int64_t>(
                   summary.control_updates))
            << " BGP updates, "
            << util::fmt_count(static_cast<std::int64_t>(summary.flow_records))
            << " sampled flow records, "
            << util::fmt_count(static_cast<std::int64_t>(
                   summary.blackholed_prefixes))
            << " blackholed prefixes\n\n";

  std::cout << "Running analysis pipeline...\n\n";
  const core::AnalysisReport report = core::run_pipeline(run.dataset);

  util::TextTable headline({"Finding", "Paper", "Measured"});
  headline.add_row({"RTBH events (merged, d=10min)", "34k",
                    util::fmt_count(static_cast<std::int64_t>(
                        report.events.size()))});
  headline.add_row(
      {"Events with DDoS indication (anomaly <=10min)", "27%",
       util::fmt_percent(static_cast<double>(report.pre.data_anomaly_10m) /
                         static_cast<double>(report.pre.total()))});
  headline.add_row(
      {"Pre-events without any sampled traffic", "46%",
       util::fmt_percent(static_cast<double>(report.pre.no_data) /
                         static_cast<double>(report.pre.total()))});
  double rate32 = 0.0;
  for (const auto& s : report.drop.by_length) {
    if (s.length == 32) rate32 = s.packet_drop_rate();
  }
  headline.add_row({"Packets dropped for /32 RTBHs", "50%",
                    util::fmt_percent(rate32)});
  headline.add_row({"UDP share during attack events", "99.5%",
                    util::fmt_percent(report.protocols.udp_share)});
  headline.add_row({"Events fully coverable by amp-port filters", "90%",
                    util::fmt_percent(
                        report.filtering.fully_filterable_fraction)});
  headline.add_row({"Detected client victims", "4057",
                    util::fmt_count(static_cast<std::int64_t>(
                        report.ports.clients))});
  headline.add_row({"Detected stable servers", "1036",
                    util::fmt_count(static_cast<std::int64_t>(
                        report.ports.servers))});
  std::cout << headline;

  std::cout << "\nUse-case classification (Fig. 19): "
            << report.classes.infrastructure << " infrastructure, "
            << report.classes.squatting << " squatting-candidate, "
            << report.classes.zombies << " zombie-candidate, "
            << report.classes.other << " other\n";
  return 0;
}
