#include "bgp/blackhole_index.hpp"

#include <gtest/gtest.h>

namespace bw::bgp {
namespace {

const net::Prefix kHost = *net::Prefix::parse("10.1.2.3/32");
const net::Ipv4 kAddr = net::Ipv4(10, 1, 2, 3);

class BlackholeIndexTest : public ::testing::Test {
 protected:
  BlackholeIndex index_{64600};
};

TEST_F(BlackholeIndexTest, OpenCloseInterval) {
  index_.open(kHost, 100, {kBlackhole}, 1);
  index_.close(kHost, 200);
  index_.finalize(1000);
  EXPECT_TRUE(index_.announced_at(kAddr, 100));
  EXPECT_TRUE(index_.announced_at(kAddr, 199));
  EXPECT_FALSE(index_.announced_at(kAddr, 200));  // half-open
  EXPECT_FALSE(index_.announced_at(kAddr, 99));
  EXPECT_EQ(index_.prefix_count(), 1u);
}

TEST_F(BlackholeIndexTest, FinalizeClosesOpenSpans) {
  index_.open(kHost, 100, {kBlackhole}, 1);
  index_.finalize(500);
  EXPECT_TRUE(index_.announced_at(kAddr, 499));
  EXPECT_FALSE(index_.announced_at(kAddr, 500));
}

TEST_F(BlackholeIndexTest, ReAnnounceWhileOpenKeepsInterval) {
  index_.open(kHost, 100, {kBlackhole}, 1);
  index_.open(kHost, 150, {kBlackhole, kNoExport}, 2);
  index_.close(kHost, 300);
  index_.finalize(1000);
  EXPECT_TRUE(index_.announced_at(kAddr, 120));
  EXPECT_TRUE(index_.announced_at(kAddr, 299));
  EXPECT_FALSE(index_.announced_at(kAddr, 300));
}

TEST_F(BlackholeIndexTest, CloseWithoutOpenIsNoop) {
  index_.close(kHost, 100);
  index_.finalize(1000);
  EXPECT_FALSE(index_.announced_at(kAddr, 100));
}

TEST_F(BlackholeIndexTest, MultipleIntervalsBinarySearch) {
  for (int i = 0; i < 50; ++i) {
    index_.open(kHost, 1000 * i, {kBlackhole}, 1);
    index_.close(kHost, 1000 * i + 500);
  }
  index_.finalize(1000000);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(index_.announced_at(kAddr, 1000 * i + 250)) << i;
    EXPECT_FALSE(index_.announced_at(kAddr, 1000 * i + 750)) << i;
  }
}

TEST_F(BlackholeIndexTest, CoveringPrefixMatch) {
  const auto p24 = *net::Prefix::parse("10.1.2.0/24");
  index_.open(p24, 0, {kBlackhole}, 1);
  index_.finalize(1000);
  EXPECT_TRUE(index_.announced_at(kAddr, 10));
  EXPECT_TRUE(index_.announced_at(net::Ipv4(10, 1, 2, 200), 10));
  EXPECT_FALSE(index_.announced_at(net::Ipv4(10, 1, 3, 1), 10));
  EXPECT_TRUE(index_.announced_at(p24, 10));
}

TEST_F(BlackholeIndexTest, DroppedForPeerRespectsPolicy) {
  index_.open(kHost, 0, {kBlackhole}, 1);
  index_.finalize(1000);
  PeerPolicy accept{.blackhole = BlackholeAcceptance::kAcceptAll};
  PeerPolicy reject{.blackhole = BlackholeAcceptance::kClassfulOnly};
  EXPECT_TRUE(index_.dropped_for_peer(accept, 99, kAddr, 10));
  EXPECT_FALSE(index_.dropped_for_peer(reject, 99, kAddr, 10));
}

TEST_F(BlackholeIndexTest, SenderDoesNotReceiveOwnRoute) {
  index_.open(kHost, 0, {kBlackhole}, 7);
  index_.finalize(1000);
  PeerPolicy accept{.blackhole = BlackholeAcceptance::kAcceptAll};
  EXPECT_FALSE(index_.dropped_for_peer(accept, 7, kAddr, 10));
  EXPECT_TRUE(index_.dropped_for_peer(accept, 8, kAddr, 10));
}

TEST_F(BlackholeIndexTest, DroppedForPeerRespectsTargeting) {
  index_.open(kHost, 0, {kBlackhole, Community{0, 42}}, 1);
  index_.finalize(1000);
  PeerPolicy accept{.blackhole = BlackholeAcceptance::kAcceptAll};
  EXPECT_FALSE(index_.dropped_for_peer(accept, 42, kAddr, 10));
  EXPECT_TRUE(index_.dropped_for_peer(accept, 43, kAddr, 10));
}

TEST_F(BlackholeIndexTest, AnnouncedRangesCollectsCoveringSpans) {
  const auto p24 = *net::Prefix::parse("10.1.2.0/24");
  index_.open(kHost, 0, {kBlackhole}, 1);
  index_.close(kHost, 100);
  index_.open(p24, 500, {kBlackhole}, 1);
  index_.close(p24, 600);
  index_.finalize(1000);
  const auto ranges = index_.announced_ranges(kAddr);
  EXPECT_EQ(ranges.size(), 2u);
}

TEST_F(BlackholeIndexTest, ForEachVisitsClosedSpans) {
  index_.open(kHost, 0, {kBlackhole}, 1);
  index_.close(kHost, 50);
  index_.open(kHost, 100, {kBlackhole}, 1);
  index_.finalize(1000);
  std::size_t spans = 0;
  index_.for_each([&](const net::Prefix& p,
                      const std::vector<BlackholeIndex::Span>& s) {
    EXPECT_EQ(p, kHost);
    spans += s.size();
  });
  EXPECT_EQ(spans, 2u);
}

}  // namespace
}  // namespace bw::bgp
