#include "util/bootstrap.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace bw::util {

ConfidenceInterval bootstrap_ci(std::span<const double> sample,
                                const Statistic& statistic,
                                const BootstrapConfig& config) {
  ConfidenceInterval ci;
  ci.level = config.level;
  if (sample.empty()) return ci;
  ci.estimate = statistic(sample);

  Rng rng(config.seed);
  std::vector<double> resample(sample.size());
  std::vector<double> stats;
  stats.reserve(config.resamples);
  for (std::size_t b = 0; b < config.resamples; ++b) {
    for (double& v : resample) v = sample[rng.index(sample.size())];
    stats.push_back(statistic(resample));
  }
  const double alpha = (1.0 - config.level) / 2.0;
  ci.lo = quantile(stats, alpha);
  ci.hi = quantile(stats, 1.0 - alpha);
  return ci;
}

ConfidenceInterval bootstrap_quantile_ci(std::span<const double> sample,
                                         double q,
                                         const BootstrapConfig& config) {
  return bootstrap_ci(
      sample, [q](std::span<const double> s) { return quantile(s, q); },
      config);
}

ConfidenceInterval bootstrap_share_ci(std::uint64_t successes, std::uint64_t n,
                                      const BootstrapConfig& config) {
  ConfidenceInterval ci;
  ci.level = config.level;
  if (n == 0) return ci;
  const double p = static_cast<double>(successes) / static_cast<double>(n);
  ci.estimate = p;
  // Binomial resampling is equivalent to bootstrapping the indicator sample
  // and avoids materialising it.
  Rng rng(config.seed);
  std::vector<double> stats;
  stats.reserve(config.resamples);
  for (std::size_t b = 0; b < config.resamples; ++b) {
    stats.push_back(static_cast<double>(rng.binomial(
                        static_cast<std::int64_t>(n), p)) /
                    static_cast<double>(n));
  }
  const double alpha = (1.0 - config.level) / 2.0;
  ci.lo = quantile(stats, alpha);
  ci.hi = quantile(stats, 1.0 - alpha);
  return ci;
}

}  // namespace bw::util
