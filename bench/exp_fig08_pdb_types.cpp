// Figure 8: PeeringDB organisation types of the top-100 source ASes (by
// traffic towards /32 RTBHs), split by whether they accept host blackholes.
//
// Paper: most ASes that do not (or only partially) accept blackhole routes
// are network service providers (NSPs) — surprising, since those should be
// best-prepared for complex BGP configuration.
#include "common.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig08");
  const auto rows =
      core::type_top_sources(exp.report.drop, exp.run.registry, 100);

  bench::print_header("Fig. 8",
                      "PeeringDB org types of the top-100 source ASes");
  util::TextTable table({"org type", "droppers (>99%)", "forwarders/partial"});
  auto csv = bench::open_csv("fig08_pdb_types",
                             {"org_type", "droppers", "others"});
  std::size_t nsp_others = 0;
  std::size_t total_others = 0;
  for (const auto& r : rows) {
    table.add_row({std::string(pdb::to_string(r.type)),
                   std::to_string(r.droppers), std::to_string(r.others)});
    csv->write_row({std::string(pdb::to_string(r.type)),
                    std::to_string(r.droppers), std::to_string(r.others)});
    if (r.type == pdb::OrgType::kNsp) nsp_others += r.others;
    total_others += r.others;
  }
  std::cout << table;

  bench::print_paper_row(
      "largest non-accepting group", "NSP",
      total_others > 0 && nsp_others * 3 >= total_others ? "NSP-heavy"
                                                         : "mixed");
  bench::print_paper_row(
      "NSP share of non-accepting top sources", "(dominant)",
      total_others > 0
          ? util::fmt_percent(static_cast<double>(nsp_others) /
                                  static_cast<double>(total_others),
                              0)
          : "n/a");
  return 0;
}
