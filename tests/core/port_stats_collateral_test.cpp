#include <gtest/gtest.h>

#include "core/collateral.hpp"
#include "core/port_stats.hpp"
#include "core/radviz.hpp"
#include "corpus.hpp"

namespace bw::core {
namespace {

using testutil::World;

// A 40-day world with one clear server (stable TCP/443 top port, daily
// bidirectional traffic) and one clear client (daily-changing ephemeral
// inbound top port), both blackholed once so they enter the host universe.
class HostAnalysisTest : public ::testing::Test {
 protected:
  HostAnalysisTest() : world_({0, util::days(40)}, 0) {}

  Dataset make_dataset(int days_active = 35) {
    const net::Ipv4 server(24, 0, 0, 1);
    const net::Ipv4 client(24, 0, 0, 2);
    bgp::UpdateLog control;
    // One short RTBH each on day 38 (outside the traffic we generate).
    for (const auto victim : {server, client}) {
      control.push_back(world_.platform->service().make_announce(
          util::days(38), World::kVictimAsn, 50000, net::Prefix::host(victim)));
      control.push_back(world_.platform->service().make_withdraw(
          util::days(38) + util::kHour, World::kVictimAsn, 50000,
          net::Prefix::host(victim)));
    }

    std::vector<flow::TrafficBurst> bursts;
    for (int day = 0; day < days_active; ++day) {
      const util::TimeMs d0 = day * util::kDay + 2 * util::kHour;
      const util::TimeRange w{d0, d0 + util::kHour};
      // Server: inbound to TCP/443 from rotating ephemeral ports; outbound
      // replies from 443.
      bursts.push_back(world_.burst(
          net::Ipv4(16, 0, 0, 5), server, net::Proto::kTcp,
          static_cast<net::Port>(33000 + day * 13), 443, w, 40,
          world_.acceptor));
      bursts.push_back(world_.burst(
          server, net::Ipv4(16, 0, 0, 5), net::Proto::kTcp, 443,
          static_cast<net::Port>(33000 + day * 13), w, 30,
          world_.victim_member));
      // Client: inbound arrives on a per-day ephemeral port from 443;
      // outbound goes from that port to 443.
      const auto day_port = static_cast<net::Port>(40000 + day * 17);
      bursts.push_back(world_.burst(net::Ipv4(16, 0, 0, 6), client,
                                    net::Proto::kTcp, 443, day_port, w, 20,
                                    world_.acceptor));
      bursts.push_back(world_.burst(client, net::Ipv4(16, 0, 0, 6),
                                    net::Proto::kTcp, day_port, 443, w, 10,
                                    world_.victim_member));
    }
    return world_.run(std::move(control), bursts);
  }

  World world_;
};

TEST_F(HostAnalysisTest, ClassifiesServerAndClient) {
  const Dataset dataset = make_dataset();
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  const auto stats = compute_port_stats(dataset, events);
  EXPECT_EQ(stats.blackholed_hosts_total, 2u);
  EXPECT_EQ(stats.eligible_hosts, 2u);
  EXPECT_EQ(stats.clients, 1u);
  EXPECT_EQ(stats.servers, 1u);

  for (const auto& h : stats.hosts) {
    if (h.ip == net::Ipv4(24, 0, 0, 1)) {
      EXPECT_EQ(h.classification, HostClass::kServer);
      EXPECT_EQ(h.top_ports.size(), 1u);  // always TCP/443
      EXPECT_EQ(h.top_ports[0], (net::ProtoPort{net::Proto::kTcp, 443}));
      EXPECT_LT(h.port_variation, 0.1);
      EXPECT_EQ(h.days_with_inbound, 35u);
      EXPECT_EQ(h.days_bidirectional, 35u);
      // Server sees many distinct inbound source ports, few dst ports.
      EXPECT_GT(h.unique_src_ports_in, 30u);
      EXPECT_EQ(h.unique_dst_ports_in, 1u);
    } else {
      EXPECT_EQ(h.classification, HostClass::kClient);
      EXPECT_NEAR(h.port_variation, 1.0, 0.01);
      EXPECT_GT(h.unique_dst_ports_in, 30u);
      EXPECT_EQ(h.unique_src_ports_in, 1u);  // all from 443
    }
  }
}

TEST_F(HostAnalysisTest, MinDaysCriterionExcludes) {
  const Dataset dataset = make_dataset(/*days_active=*/10);
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  const auto stats = compute_port_stats(dataset, events);
  EXPECT_EQ(stats.eligible_hosts, 0u);
  EXPECT_EQ(stats.clients, 0u);
  EXPECT_EQ(stats.servers, 0u);
  for (const auto& h : stats.hosts) {
    EXPECT_EQ(h.classification, HostClass::kUnclassified);
  }
}

TEST_F(HostAnalysisTest, Table4JoinsRegistry) {
  const Dataset dataset = make_dataset();
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  const auto stats = compute_port_stats(dataset, events);
  pdb::Registry registry;
  registry.upsert({.asn = 50000, .type = pdb::OrgType::kCableDslIsp});
  const auto rows = asn_type_table(stats, registry);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].type, pdb::OrgType::kCableDslIsp);
  EXPECT_EQ(rows[0].clients, 1u);
  EXPECT_EQ(rows[0].servers, 1u);
}

TEST_F(HostAnalysisTest, RadvizSeparatesClientAndServer) {
  const Dataset dataset = make_dataset();
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  const auto stats = compute_port_stats(dataset, events);
  const auto radviz = radviz_projection(stats);
  ASSERT_EQ(radviz.points.size(), 2u);
  EXPECT_EQ(radviz.client_side_count, 1u);
  EXPECT_EQ(radviz.server_side_count, 1u);
  for (const auto& p : radviz.points) {
    EXPECT_LE(p.x * p.x + p.y * p.y, 1.0 + 1e-9);  // inside the unit circle
    const bool is_client = p.classification == HostClass::kClient;
    EXPECT_EQ(p.client_side, is_client)
        << "RadViz pull must agree with the port-variation classifier";
  }
}

TEST_F(HostAnalysisTest, CollateralCountsTopPortPacketsDuringEvents) {
  // Extend: traffic to the server's top port DURING its RTBH event.
  const net::Ipv4 server(24, 0, 0, 1);
  bgp::UpdateLog control;
  control.push_back(world_.platform->service().make_announce(
      util::days(38), World::kVictimAsn, 50000, net::Prefix::host(server)));
  control.push_back(world_.platform->service().make_withdraw(
      util::days(38) + util::kHour, World::kVictimAsn, 50000,
      net::Prefix::host(server)));

  std::vector<flow::TrafficBurst> bursts;
  for (int day = 0; day < 35; ++day) {
    const util::TimeMs d0 = day * util::kDay + 2 * util::kHour;
    const util::TimeRange w{d0, d0 + util::kHour};
    bursts.push_back(world_.burst(net::Ipv4(16, 0, 0, 5), server,
                                  net::Proto::kTcp,
                                  static_cast<net::Port>(33000 + day * 13),
                                  443, w, 40, world_.acceptor));
    bursts.push_back(world_.burst(server, net::Ipv4(16, 0, 0, 5),
                                  net::Proto::kTcp, 443,
                                  static_cast<net::Port>(33000 + day * 13), w,
                                  30, world_.victim_member));
  }
  // During the event: 25 legitimate packets to 443 via the acceptor (these
  // get dropped) and 15 via the rejector (these get through), plus attack
  // noise on another port that must not count.
  const util::TimeRange ev{util::days(38), util::days(38) + util::kHour};
  bursts.push_back(world_.burst(net::Ipv4(16, 0, 0, 7), server,
                                net::Proto::kTcp, 50000, 443, ev, 25,
                                world_.acceptor));
  bursts.push_back(world_.burst(net::Ipv4(16, 1, 0, 7), server,
                                net::Proto::kTcp, 50001, 443, ev, 15,
                                world_.rejector));
  bursts.push_back(world_.burst(net::Ipv4(64, 0, 0, 8), server,
                                net::Proto::kUdp, 123, 40000, ev, 500,
                                world_.acceptor));

  const Dataset dataset = world_.run(std::move(control), bursts);
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  const auto stats = compute_port_stats(dataset, events);
  const auto collateral = compute_collateral(dataset, events, stats, 10000);

  EXPECT_EQ(collateral.servers_considered, 1u);
  ASSERT_EQ(collateral.events.size(), 1u);
  const auto& ce = collateral.events[0];
  EXPECT_EQ(ce.packets_to_top_ports, 40u);
  EXPECT_EQ(ce.packets_actually_dropped, 25u);
  EXPECT_EQ(ce.est_original_packets, 400000u);
  EXPECT_EQ(collateral.total_top_port_packets, 40u);
  EXPECT_EQ(collateral.total_dropped_packets, 25u);
}

}  // namespace
}  // namespace bw::core
