#include "testing/bench_gate.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

namespace bw::testing {

namespace {

/// Minimal recursive-descent parser for the bench schema's JSON subset.
/// Flattens nested objects into dotted paths as it goes.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  util::Status parse_into(BenchJson& out) {
    skip_ws();
    util::Status st = parse_object(out, "");
    if (!st.ok()) return st;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after object");
    return util::ok_status();
  }

 private:
  util::Status parse_object(BenchJson& out, const std::string& prefix) {
    if (!consume('{')) return fail("expected '{'");
    skip_ws();
    if (consume('}')) return util::ok_status();
    while (true) {
      skip_ws();
      std::string key;
      if (util::Status st = parse_string(key); !st.ok()) return st;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after key \"" + key + "\"");
      skip_ws();
      const std::string path = prefix.empty() ? key : prefix + "." + key;
      if (util::Status st = parse_value(out, path); !st.ok()) return st;
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return util::ok_status();
      return fail("expected ',' or '}' after value of \"" + path + "\"");
    }
  }

  util::Status parse_value(BenchJson& out, const std::string& path) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, path);
    if (c == '"') {
      std::string s;
      if (util::Status st = parse_string(s); !st.ok()) return st;
      out.strings[path] = std::move(s);
      return util::ok_status();
    }
    if (c == 't' || c == 'f') {
      const std::string_view word = c == 't' ? "true" : "false";
      if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
      pos_ += word.size();
      out.numbers[path] = c == 't' ? 1.0 : 0.0;
      return util::ok_status();
    }
    if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") return fail("bad literal");
      pos_ += 4;
      return util::ok_status();
    }
    if (c == '[') {
      return fail("arrays are not part of the bench schema (at \"" + path +
                  "\")");
    }
    return parse_number(out, path);
  }

  util::Status parse_number(BenchJson& out, const std::string& path) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value at \"" + path + "\"");
    double v = 0.0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, v);
    if (ec != std::errc() || end != last) {
      return fail("malformed number at \"" + path + "\"");
    }
    out.numbers[path] = v;
    return util::ok_status();
  }

  util::Status parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return util::ok_status();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          default: return fail("unsupported escape in string");
        }
        continue;
      }
      out.push_back(c);
    }
    return fail("unterminated string");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  [[nodiscard]] util::Status fail(std::string what) const {
    return util::data_loss("bench json: " + std::move(what) + " (offset " +
                           std::to_string(pos_) + ")");
  }

  std::string_view text_;
  std::size_t pos_{0};
};

std::string format_number(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace

util::Result<BenchJson> parse_bench_json(std::string_view text) {
  BenchJson out;
  Parser p(text);
  if (util::Status st = p.parse_into(out); !st.ok()) return st;
  return out;
}

util::Result<BenchJson> load_bench_json(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return util::not_found("cannot open " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  auto parsed = parse_bench_json(buffer.str());
  if (!parsed.ok()) return parsed.status().with_context(path);
  return parsed;
}

GateResult check_regression(const BenchJson& baseline, const BenchJson& current,
                            double max_regression,
                            const std::string& threads) {
  GateResult r;
  r.metric = "flows_per_s_by_threads." + threads;

  const auto schema_of = [](const BenchJson& b) {
    return static_cast<std::int64_t>(b.number("bench_schema_version", 0));
  };
  if (schema_of(baseline) != kBenchSchemaVersion ||
      schema_of(current) != kBenchSchemaVersion) {
    r.pass = false;
    r.message = "bench-gate: schema version mismatch (baseline v" +
                std::to_string(schema_of(baseline)) + ", current v" +
                std::to_string(schema_of(current)) + ", gate understands v" +
                std::to_string(kBenchSchemaVersion) +
                ") — refresh the baseline";
    return r;
  }

  r.baseline = baseline.number(r.metric);
  r.current = current.number(r.metric);
  const std::string name = current.name();
  if (!baseline.has(r.metric) || r.baseline <= 0.0) {
    r.pass = false;
    r.message = "bench-gate: baseline for " + name + " lacks " + r.metric;
    return r;
  }
  if (!current.has(r.metric) || r.current <= 0.0) {
    r.pass = false;
    r.message = "bench-gate: current run of " + name + " lacks " + r.metric;
    return r;
  }

  r.change = (r.current - r.baseline) / r.baseline;
  const double floor = r.baseline * (1.0 - max_regression);
  const std::string pct = format_number(std::abs(r.change) * 100.0);
  if (r.current < floor) {
    r.pass = false;
    r.message = "bench-gate: REGRESSION in " + name + " " + r.metric + ": " +
                format_number(r.current) + " flows/s vs baseline " +
                format_number(r.baseline) + " (-" + pct + "%, limit " +
                format_number(max_regression * 100.0) + "%)";
    return r;
  }
  r.pass = true;
  r.message = "bench-gate: ok " + name + " " + r.metric + ": " +
              format_number(r.current) + " flows/s vs baseline " +
              format_number(r.baseline) + " (" +
              (r.change >= 0.0 ? "+" : "-") + pct + "%)";
  return r;
}

}  // namespace bw::testing
