#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace bw::util {
namespace {

TEST(StreamingStatsTest, Empty) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(StreamingStatsTest, BasicMoments) {
  StreamingStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStatsTest, SampleVariance) {
  StreamingStats s;
  s.add(1.0);
  EXPECT_EQ(s.sample_variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(StreamingStatsTest, MergeEqualsSequential) {
  Rng rng(1);
  StreamingStats whole;
  StreamingStats a;
  StreamingStats b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(StreamingStatsTest, MergeWithEmpty) {
  StreamingStats a;
  a.add(5.0);
  StreamingStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  StreamingStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(QuantileTest, EmptyIsZero) {
  EXPECT_EQ(quantile({}, 0.5), 0.0);
}

TEST(QuantileTest, SingleValue) {
  const std::vector<double> v{7.0};
  EXPECT_EQ(quantile(v, 0.0), 7.0);
  EXPECT_EQ(quantile(v, 0.5), 7.0);
  EXPECT_EQ(quantile(v, 1.0), 7.0);
}

TEST(QuantileTest, Interpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0 / 3.0), 2.0);
}

TEST(QuantileTest, UnsortedInput) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(QuantileTest, ClampsQ) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 2.0), 2.0);
}

TEST(CdfTest, EmpiricalCdfProperties) {
  const std::vector<double> v{3.0, 1.0, 2.0, 2.0};
  const auto cdf = empirical_cdf(v);
  ASSERT_EQ(cdf.size(), 3u);  // duplicates collapsed
  EXPECT_DOUBLE_EQ(cdf.front().value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.front().cumulative_fraction, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].value, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].cumulative_fraction, 0.75);
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_fraction, 1.0);
}

TEST(CdfTest, CdfAtSteps) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const auto cdf = empirical_cdf(v);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 10.0), 1.0);
}

TEST(WeightedTest, WeightedMeanAndStddev) {
  const std::vector<double> v{1.0, 3.0};
  const std::vector<double> w{1.0, 1.0};
  EXPECT_DOUBLE_EQ(weighted_mean(v, w), 2.0);
  EXPECT_DOUBLE_EQ(weighted_stddev(v, w), 1.0);

  const std::vector<double> w2{3.0, 1.0};
  EXPECT_DOUBLE_EQ(weighted_mean(v, w2), 1.5);
}

TEST(WeightedTest, ZeroWeights) {
  const std::vector<double> v{1.0, 2.0};
  const std::vector<double> w{0.0, 0.0};
  EXPECT_EQ(weighted_mean(v, w), 0.0);
  EXPECT_EQ(weighted_stddev(v, w), 0.0);
}

TEST(PearsonTest, PerfectCorrelation) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg(y.rbegin(), y.rend());
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesIsZero) {
  const std::vector<double> x{1.0, 1.0, 1.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_EQ(pearson(x, y), 0.0);
}

// Property sweep: quantiles of shuffled data match sorted order statistics.
class QuantilePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantilePropertyTest, MonotoneInQ) {
  Rng rng(GetParam());
  std::vector<double> v;
  const int n = 1 + static_cast<int>(rng.index(200));
  v.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v.push_back(rng.uniform(-100.0, 100.0));
  double prev = quantile(v, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile(v, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), *std::min_element(v.begin(), v.end()));
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), *std::max_element(v.begin(), v.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantilePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace bw::util
