// Tests for the bilateral ("other RTBH sources") blackholing model:
// private drops require peer support, and private-only mitigations leave
// data-plane drops with no route-server footprint.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/pipeline.hpp"
#include "gen/scenario.hpp"

namespace bw::gen {
namespace {

TEST(PrivateBlackholeTest, PrivateOnlyEventsHaveNoControlRecord) {
  ScenarioConfig cfg;
  cfg.scale = 0.03;
  cfg.seed = 31337;
  cfg.private_only_fraction = 0.25;  // exaggerate for the test
  ixp::Platform platform(Scenario::platform_config(cfg));
  Scenario scenario(cfg);
  scenario.install(platform);

  std::size_t private_only = 0;
  std::size_t with_rs_overlap = 0;
  for (const auto& ev : scenario.truth().events) {
    if (!ev.private_only) continue;
    ++private_only;
    EXPECT_TRUE(ev.has_attack);
    EXPECT_TRUE(ev.privately_blackholed);
    EXPECT_EQ(ev.announcements, 0u);
    // No route-server update for this prefix inside the private window.
    // (The same victim may be RS-blackholed in *other*, disjoint events.)
    bool overlap = false;
    for (const auto& u : scenario.control()) {
      if (u.prefix == ev.prefix && ev.rtbh_span.contains(u.time)) {
        overlap = true;
        break;
      }
    }
    if (overlap) ++with_rs_overlap;
  }
  EXPECT_GT(private_only, 5u);
  // Victim reuse can place an RS event inside a private window, but only
  // rarely.
  EXPECT_LE(with_rs_overlap, private_only / 5);
}

TEST(PrivateBlackholeTest, PrivateOnlyDropsAppearOnDataPlane) {
  ScenarioConfig cfg;
  cfg.scale = 0.03;
  cfg.seed = 31337;
  cfg.private_only_fraction = 0.25;
  const core::ScenarioRun run = core::run_scenario(cfg, std::string{});

  // Find a private-only victim and check for unexplained drops.
  std::size_t victims_with_drops = 0;
  std::size_t checked = 0;
  for (const auto& ev : run.truth.events) {
    if (!ev.private_only || checked >= 20) continue;
    ++checked;
    std::uint64_t dropped = 0;
    for (const std::size_t idx :
         run.dataset.flows_to(ev.prefix, ev.rtbh_span)) {
      const auto& rec = run.dataset.flows()[idx];
      if (!rec.dropped()) continue;
      ++dropped;
      // No route-server blackhole explains this drop.
      EXPECT_FALSE(
          run.dataset.rs_index().announced_at(rec.dst_ip, rec.time + 40));
    }
    if (dropped > 0) ++victims_with_drops;
  }
  EXPECT_GT(victims_with_drops, checked / 2);
}

TEST(PrivateBlackholeTest, StockPeersNeverSeePrivateDrops) {
  // A world where every peer is stock-configured: private blackholes have
  // no session to live on, so nothing at all is dropped.
  ScenarioConfig cfg;
  cfg.scale = 0.02;
  cfg.seed = 7;
  cfg.policy_accept_all = 0.0;
  cfg.policy_whitelist_host = 0.0;
  cfg.policy_classful_only = 1.0;
  cfg.policy_reject_all = 0.0;
  cfg.policy_inconsistent = 0.0;
  cfg.private_blackhole_fraction = 1.0;  // every attack privately shadowed
  cfg.private_only_fraction = 0.0;
  cfg.event_len32 = 1.0;  // only host routes, which nobody accepts
  cfg.event_len24 = cfg.event_len25_31 = cfg.event_len22_23 = 0.0;
  // Squatting-protection RTBHs are <= /24 — stock classful-only peers
  // accept those by design, so remove them from this no-drop world.
  cfg.squatting_prefixes = 0;
  const core::ScenarioRun run = core::run_scenario(cfg, std::string{});
  const auto s = run.dataset.summary();
  EXPECT_EQ(s.dropped_packets, 0u)
      << "no peer accepts host routes, so neither RS nor bilateral "
         "blackholes can drop";
}

}  // namespace
}  // namespace bw::gen
