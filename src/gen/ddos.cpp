#include "gen/ddos.hpp"

#include <algorithm>
#include <cmath>

namespace bw::gen {

void DdosGenerator::emit(const AttackSpec& spec,
                         std::span<const flow::MemberId> spoofed_ingress,
                         const ixp::Platform::BurstSink& sink) {
  if (spec.total_packets <= 0 || spec.vectors.empty()) return;
  double share_total = 0.0;
  for (const auto& v : spec.vectors) share_total += std::max(v.volume_share, 0.0);
  if (share_total <= 0.0) return;

  for (const auto& vec : spec.vectors) {
    const auto vector_packets = static_cast<std::int64_t>(
        static_cast<double>(spec.total_packets) *
        std::max(vec.volume_share, 0.0) / share_total);
    if (vector_packets <= 0) continue;
    switch (vec.kind) {
      case VectorKind::kUdpAmplification:
        emit_amplification(spec, vec, vector_packets, sink);
        break;
      case VectorKind::kSynFlood:
        emit_syn_flood(spec, vector_packets, spoofed_ingress, sink);
        break;
      case VectorKind::kUdpRandomPorts:
        emit_udp_carpet(spec, vector_packets, spoofed_ingress, false, sink);
        break;
      case VectorKind::kUdpIncreasingPorts:
        emit_udp_carpet(spec, vector_packets, spoofed_ingress, true, sink);
        break;
    }
  }
}

void DdosGenerator::emit_amplification(const AttackSpec& spec,
                                       const AttackVector& vec,
                                       std::int64_t vector_packets,
                                       const ixp::Platform::BurstSink& sink) {
  const auto amps = pool_->draw(vec.amp_port, spec.amplifier_count, rng_);
  if (amps.empty()) return;

  // Heavy-tailed per-amplifier volume split: a handful of big reflectors
  // dominate each attack, so the per-event drop rate is governed by a few
  // handover peers' policies — the source of Fig. 6's wide /32 spread.
  std::vector<double> weight(amps.size());
  for (double& w : weight) w = rng_.pareto(1.0, 0.7);
  double total_w = 0.0;
  for (double w : weight) total_w += w;

  for (std::size_t i = 0; i < amps.size(); ++i) {
    const auto packets = static_cast<std::int64_t>(
        static_cast<double>(vector_packets) * weight[i] / total_w);
    if (packets <= 0) continue;
    flow::TrafficBurst b;
    b.window = spec.window;
    b.src_ip = amps[i]->ip;
    b.dst_ip = spec.victim;
    b.proto = net::Proto::kUdp;
    b.src_port = amps[i]->udp_port;  // reflected from the service port
    // Victims receive reflections on the port the attacker spoofed as
    // source — in the wild a random (often fixed-per-attack) high port.
    b.dst_port = static_cast<net::Port>(rng_.uniform_int(1024, 65535));
    b.packets = packets;
    b.avg_packet_bytes = spec.packet_bytes;
    b.handover = amps[i]->handover;
    sink(b);
  }
}

void DdosGenerator::emit_syn_flood(const AttackSpec& spec,
                                   std::int64_t vector_packets,
                                   std::span<const flow::MemberId> ingress,
                                   const ixp::Platform::BurstSink& sink) {
  if (ingress.empty()) return;
  // A SYN flood arrives via a handful of ingress members; sources are
  // spoofed (unattributable origins), destination is one service port.
  const auto dst_port =
      rng_.chance(0.6) ? net::kHttps
                       : static_cast<net::Port>(rng_.uniform_int(1, 1024));
  const std::size_t ingress_count =
      std::min<std::size_t>(ingress.size(), 1 + rng_.index(4));
  const auto member_picks = rng_.sample_indices(ingress.size(), ingress_count);
  // Sources rotate: emit several bursts per ingress with random /8 sources.
  const std::size_t bursts_per_ingress = 8;
  const std::int64_t per_burst = std::max<std::int64_t>(
      vector_packets / static_cast<std::int64_t>(ingress_count * bursts_per_ingress),
      1);
  for (const std::size_t mi : member_picks) {
    for (std::size_t k = 0; k < bursts_per_ingress; ++k) {
      flow::TrafficBurst b;
      b.window = spec.window;
      b.src_ip = net::Ipv4(static_cast<std::uint32_t>(
          0xC0000000u | rng_.uniform_int(0, 0x00FFFFFF)));  // spoofed 192/8
      b.dst_ip = spec.victim;
      b.proto = net::Proto::kTcp;
      b.src_port = static_cast<net::Port>(rng_.uniform_int(1024, 65535));
      b.dst_port = dst_port;
      b.packets = per_burst;
      b.avg_packet_bytes = 60;  // bare SYNs
      b.handover = ingress[mi];
      sink(b);
    }
  }
}

void DdosGenerator::emit_udp_carpet(const AttackSpec& spec,
                                    std::int64_t vector_packets,
                                    std::span<const flow::MemberId> ingress,
                                    bool increasing,
                                    const ixp::Platform::BurstSink& sink) {
  if (ingress.empty()) return;
  const std::size_t bursts = 24;
  const std::int64_t per_burst =
      std::max<std::int64_t>(vector_packets / static_cast<std::int64_t>(bursts), 1);
  net::Port sweep = static_cast<net::Port>(rng_.uniform_int(1, 30000));
  const flow::MemberId member = ingress[rng_.index(ingress.size())];
  for (std::size_t k = 0; k < bursts; ++k) {
    flow::TrafficBurst b;
    b.window = spec.window;
    b.src_ip = net::Ipv4(static_cast<std::uint32_t>(
        0xC0000000u | rng_.uniform_int(0, 0x00FFFFFF)));
    b.dst_ip = spec.victim;
    b.proto = net::Proto::kUdp;
    b.src_port = static_cast<net::Port>(rng_.uniform_int(1024, 65535));
    if (increasing) {
      sweep = static_cast<net::Port>(sweep + 97);
      b.dst_port = sweep;
    } else {
      b.dst_port = static_cast<net::Port>(rng_.uniform_int(1, 65535));
    }
    b.packets = per_burst;
    b.avg_packet_bytes = 500;
    b.handover = member;
    sink(b);
  }
}

}  // namespace bw::gen
