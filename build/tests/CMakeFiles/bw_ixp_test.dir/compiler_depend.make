# Empty compiler generated dependencies file for bw_ixp_test.
# This may be replaced when dependencies are built.
