// Unit tests for the bump-allocation arena backing the columnar kernels'
// per-event scratch arrays.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "util/arena.hpp"

namespace bw::util {
namespace {

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena(128);
  for (const std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    for (int i = 0; i < 8; ++i) {
      void* p = arena.allocate(3, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "align=" << align;
    }
  }
}

TEST(ArenaTest, AllocZeroedIsZeroAndWritable) {
  Arena arena;
  auto* a = arena.alloc_zeroed<std::uint64_t>(1000);
  ASSERT_NE(a, nullptr);
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(a[i], 0u);
  for (std::size_t i = 0; i < 1000; ++i) a[i] = i;
  // A second array must not alias the first.
  auto* b = arena.alloc_zeroed<std::uint64_t>(1000);
  ASSERT_NE(b, nullptr);
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(b[i], 0u);
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(a[i], i);
}

TEST(ArenaTest, AllocationLargerThanBlockSucceeds) {
  Arena arena(64);
  auto* big = arena.alloc_array<std::uint8_t>(1 << 20);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xAB, 1 << 20);
  EXPECT_GE(arena.bytes_used(), std::size_t{1} << 20);
}

TEST(ArenaTest, ResetReusesBlocksWithoutNewReservations) {
  Arena arena(1 << 12);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 64; ++i) {
      auto* p = arena.alloc_zeroed<std::uint64_t>(512);
      ASSERT_NE(p, nullptr);
      p[0] = 1;  // dirty the memory so zeroing is actually exercised
      p[511] = 2;
    }
    arena.reset();
  }
  const std::size_t reserved_after_warmup = arena.bytes_reserved();
  EXPECT_GT(reserved_after_warmup, 0u);
  // Steady state: the same allocation pattern must be served entirely from
  // retained blocks.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 64; ++i) {
      auto* p = arena.alloc_zeroed<std::uint64_t>(512);
      ASSERT_NE(p, nullptr);
      for (int k = 0; k < 512; ++k) ASSERT_EQ(p[k], 0u);
      p[0] = 0xFF;
    }
    arena.reset();
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved_after_warmup);
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(ArenaTest, BytesUsedTracksAllocations) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  arena.alloc_array<std::uint32_t>(10);
  EXPECT_GE(arena.bytes_used(), 40u);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
}

}  // namespace
}  // namespace bw::util
