# Empty compiler generated dependencies file for exp_fig12_anomaly_offset.
# This may be replaced when dependencies are built.
