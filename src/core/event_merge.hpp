// RTBH event merging (Section 5.1).
//
// Operators announce and withdraw blackholes repeatedly during one attack
// (Fig. 9) because dropped traffic yields no telemetry. To reason about
// *attack events* rather than BGP churn, consecutive announcements of the
// same prefix are merged into one RTBH event whenever the gap between a
// withdrawal and the next announcement is at most Δ:
//
//     |bh_i[withdraw] - bh_{i+1}[announce]| <= Δ
//
// The paper fixes Δ = 10 minutes (the knee of Fig. 10), collapsing ~400k
// announcements into ~34k events (8.5%).
#pragma once

#include <vector>

#include "bgp/message.hpp"
#include "net/prefix.hpp"
#include "util/time.hpp"

namespace bw::core {

/// One merged RTBH event.
struct RtbhEvent {
  net::Prefix prefix;
  bgp::Asn sender{0};
  bgp::Asn origin{0};
  util::TimeRange span;  ///< first announce .. last withdraw (or period end)
  /// Announce..withdraw intervals inside the event (gaps included in span).
  std::vector<util::TimeRange> active;
  std::size_t announcements{0};
};

/// The paper's Δ.
inline constexpr util::DurationMs kDefaultMergeDelta = 10 * util::kMinute;

/// Merge blackhole updates (announces/withdraws, any order) into events.
/// `period_end` closes never-withdrawn blackholes (zombies).
[[nodiscard]] std::vector<RtbhEvent> merge_events(
    const bgp::UpdateLog& blackhole_updates, util::TimeMs period_end,
    util::DurationMs delta = kDefaultMergeDelta);

/// One point of the Fig. 10 sweep.
struct MergeSweepPoint {
  util::DurationMs delta{0};
  std::size_t events{0};
  double event_fraction{0.0};  ///< events / announcements
};

/// Sweep Δ over `deltas` and report the event counts (Fig. 10). The
/// Δ = infinity lower bound (events == unique prefixes) is appended last
/// with delta = -1.
[[nodiscard]] std::vector<MergeSweepPoint> merge_sweep(
    const bgp::UpdateLog& blackhole_updates, util::TimeMs period_end,
    const std::vector<util::DurationMs>& deltas);

}  // namespace bw::core
