#include "core/classify.hpp"

#include <set>

namespace bw::core {

std::string_view to_string(EventClass c) {
  switch (c) {
    case EventClass::kInfrastructureProtection: return "infrastructure-protection";
    case EventClass::kSquattingCandidate: return "squatting-candidate";
    case EventClass::kZombieCandidate: return "zombie-candidate";
    case EventClass::kOther: return "other";
  }
  return "unknown";
}

ClassificationReport classify_events(const Dataset& dataset,
                                     const std::vector<RtbhEvent>& events,
                                     const PreRtbhReport& pre,
                                     const ClassifyConfig& config,
                                     KernelEngine engine) {
  ClassificationReport report;
  report.events.reserve(events.size());
  std::set<net::Prefix> squat_prefixes;
  std::set<bgp::Asn> squat_origins;

  const flow::FlowColumns& cols = dataset.columns();
  static const KernelScanMetrics metrics = make_kernel_scan_metrics("classify");
  const obs::StopWatch watch;
  std::uint64_t rows = 0;

  for (std::size_t e = 0; e < events.size(); ++e) {
    const auto& ev = events[e];
    ClassifiedEvent ce;
    ce.event_index = e;
    ce.duration = ev.span.length();
    if (engine == KernelEngine::kColumnar) {
      rows += cols.for_each_dst_row(ev.prefix, ev.span, [&](std::size_t i) {
        ce.sampled_packets += cols.packets[i];
      });
    } else {
      dataset.for_each_flow_to(
          ev.prefix, ev.span,
          [&](const flow::FlowRecord& rec) { ce.sampled_packets += rec.packets; });
    }
    const bool anomaly = e < pre.per_event.size()
                             ? pre.per_event[e].anomaly_within_10min
                             : false;
    const bool until_end =
        ev.span.end >= dataset.period().end - config.zombie_end_slack;

    if (ev.prefix.length() <= 24 &&
        ce.duration >= config.squatting_min_duration && !anomaly) {
      ce.cls = EventClass::kSquattingCandidate;
      ++report.squatting;
      squat_prefixes.insert(ev.prefix);
      squat_origins.insert(ev.origin);
    } else if (anomaly) {
      ce.cls = EventClass::kInfrastructureProtection;
      ++report.infrastructure;
    } else if (ev.prefix.length() == 32 &&
               ce.duration >= config.zombie_min_duration &&
               ce.sampled_packets < config.low_traffic_packets) {
      ce.cls = EventClass::kZombieCandidate;
      ++report.zombies;
      if (until_end) ++report.zombies_until_period_end;
    } else {
      ce.cls = EventClass::kOther;
      ++report.other;
      if (ev.prefix.length() == 32 &&
          ce.sampled_packets < config.low_traffic_packets) {
        ++report.other_len32_low_traffic;
      }
    }
    report.events.push_back(ce);
  }
  if (engine == KernelEngine::kColumnar) {
    metrics.rows->add(rows);
    metrics.ns->add(watch.elapsed_ns());
  }
  report.squatting_prefixes = squat_prefixes.size();
  report.squatting_origin_as = squat_origins.size();
  return report;
}

}  // namespace bw::core
