// Kernel execution engine selection and per-kernel scan instrumentation.
//
// Every hot analysis kernel exists twice: the columnar engine scans the
// Dataset's structure-of-arrays flow view (flow/columns.hpp), the records
// engine walks the AoS FlowRecord log the way the seed implementation did.
// Both produce byte-identical reports — the records engine is kept as the
// correctness oracle for the golden-equivalence tests and as the fallback
// for ad-hoc analyses that need fields the columns do not carry.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace bw::core {

enum class KernelEngine : std::uint8_t {
  kColumnar,  ///< structure-of-arrays scans (default, fast path)
  kRecords,   ///< AoS FlowRecord scans (seed-equivalent oracle)
};

[[nodiscard]] std::string_view to_string(KernelEngine engine);

/// Per-kernel scan counters, registered as kernel.<name>.scan_rows and
/// kernel.<name>.scan_ns. Rows counts resolved range sizes and is invariant
/// across thread counts; the _ns suffix exempts the timing counter from the
/// determinism contract (see obs::is_deterministic_metric).
struct KernelScanMetrics {
  obs::Counter* rows;
  obs::Counter* ns;
};

/// Registry handles for one kernel's scan counters. Call once per kernel
/// (function-local static in the kernel body) — the lookup hits the global
/// registry map, the returned pointers are then hot-loop safe.
[[nodiscard]] KernelScanMetrics make_kernel_scan_metrics(
    std::string_view kernel);

}  // namespace bw::core
