// Shared fixture for core-analysis tests: a tiny, fully controlled IXP
// world with 1:1 sampling and no clock noise, so expected values are exact.
#pragma once

#include <memory>

#include "core/dataset.hpp"
#include "gen/scenario.hpp"
#include "ixp/platform.hpp"

namespace bw::core::testutil {

struct World {
  static constexpr bgp::Asn kVictimAsn = 100;
  static constexpr bgp::Asn kAcceptorAsn = 200;
  static constexpr bgp::Asn kRejectorAsn = 300;

  explicit World(util::TimeRange period = {0, util::days(7)},
                 util::DurationMs clock_offset = 0) {
    ixp::PlatformConfig cfg;
    cfg.period = period;
    cfg.sampling_rate = 1;
    cfg.clock.offset_ms = clock_offset;
    cfg.clock.jitter_sd_ms = 0.0;
    cfg.internal_flow_fraction = 0.0;
    platform = std::make_unique<ixp::Platform>(cfg);
    victim_member = platform->add_member(
        kVictimAsn, {.blackhole = bgp::BlackholeAcceptance::kAcceptAll},
        {*net::Prefix::parse("24.0.0.0/16")});
    acceptor = platform->add_member(
        kAcceptorAsn, {.blackhole = bgp::BlackholeAcceptance::kAcceptAll},
        {*net::Prefix::parse("16.0.0.0/16")});
    rejector = platform->add_member(
        kRejectorAsn, {.blackhole = bgp::BlackholeAcceptance::kClassfulOnly},
        {*net::Prefix::parse("16.1.0.0/16")});
    // Amplifier origin space behind the acceptor and rejector members.
    platform->register_origin(*net::Prefix::parse("64.0.0.0/16"), 210000,
                              acceptor);
    platform->register_origin(*net::Prefix::parse("64.1.0.0/16"), 210001,
                              rejector);
  }

  flow::TrafficBurst burst(net::Ipv4 src, net::Ipv4 dst, net::Proto proto,
                           net::Port src_port, net::Port dst_port,
                           util::TimeRange window, std::int64_t packets,
                           flow::MemberId handover) {
    flow::TrafficBurst b;
    b.src_ip = src;
    b.dst_ip = dst;
    b.proto = proto;
    b.src_port = src_port;
    b.dst_port = dst_port;
    b.window = window;
    b.packets = packets;
    b.handover = handover;
    return b;
  }

  /// Run the fabric over `bursts` with `control` and build the Dataset.
  Dataset run(bgp::UpdateLog control,
              const std::vector<flow::TrafficBurst>& bursts) {
    auto result = platform->run(
        std::move(control), [&](const ixp::Platform::BurstSink& sink) {
          for (const auto& b : bursts) sink(b);
        });
    return Dataset::from_run(std::move(result), *platform);
  }

  std::unique_ptr<ixp::Platform> platform;
  flow::MemberId victim_member{};
  flow::MemberId acceptor{};
  flow::MemberId rejector{};
};

}  // namespace bw::core::testutil
